module Fault = Ltree_recovery.Fault
module Durable_doc = Ltree_recovery.Durable_doc

(* Monomorphic comparison prelude (lint rule R2). *)
let ( = ) : int -> int -> bool = Stdlib.( = )
let ( < ) : int -> int -> bool = Stdlib.( < )

type config = {
  group_commit : int;
  replica_group_commit : int;
  checkpoint_every : int;
  shipper : Shipper.config;
  down_plan : Channel.plan;
  up_plan : Channel.plan;
  attach_pumps : int;
}

let default_config =
  {
    group_commit = 4;
    replica_group_commit = 4;
    checkpoint_every = 32;
    shipper = Shipper.default_config;
    down_plan = Channel.ideal;
    up_plan = Channel.ideal;
    attach_pumps = 32;
  }

type t = {
  config : config;
  replica_io : Fault.io;
  replica_dir : string;
  primary : Durable_doc.t;
  down : Channel.t;
  up : Channel.t;
  shipper : Shipper.t;
  mutable replica : Replica.t;
  mutable clock : int;
  mutable ops : int;
}

let primary t = t.primary
let replica t = t.replica
let shipper t = t.shipper
let clock t = t.clock
let down t = t.down
let up t = t.up

let pump t =
  t.clock <- t.clock + 1;
  if Ltree_obs.Recorder.is_enabled () then
    Ltree_obs.Recorder.set_tick t.clock;
  Shipper.pump t.shipper ~now:t.clock;
  Replica.pump t.replica ~now:t.clock

let caught_up t =
  match Replica.applied_seq t.replica with
  | Some a -> a = Durable_doc.last_seq t.primary
  | None -> false

let create ?(config = default_config) ~primary_io ~primary_dir ~replica_io
    ~replica_dir ldoc =
  let primary =
    Durable_doc.initialize ~io:primary_io ~group_commit:config.group_commit
      ~dir:primary_dir ldoc
  in
  let down = Channel.create ~plan:config.down_plan () in
  let up = Channel.create ~plan:config.up_plan () in
  let shipper =
    Shipper.create ~io:primary_io ~dir:primary_dir ~store:primary ~down ~up
      ~config:config.shipper ()
  in
  let replica =
    Replica.create ~io:replica_io ~dir:replica_dir
      ~group_commit:config.replica_group_commit
      ~checkpoint_every:config.checkpoint_every ~inbox:down ~outbox:up ()
  in
  let t =
    {
      config;
      replica_io;
      replica_dir;
      primary;
      down;
      up;
      shipper;
      replica;
      clock = 0;
      ops = 0;
    }
  in
  (* Causal stamps taken outside explicit [~tick] sites (the primary's
     appends) read the session clock.  Installed only when tracing is
     on: pool-parallel matrix cells run with tracing off and must not
     race over the provider. *)
  if Ltree_obs.Causal.is_enabled () then
    Ltree_obs.Causal.set_now (fun () -> t.clock);
  Replica.hello replica ~now:0;
  (* Bounded attach: let the bootstrap snapshot round-trip. *)
  let pumps = ref 0 in
  while (not (caught_up t)) && !pumps < config.attach_pumps do
    pump t;
    incr pumps
  done;
  t

let apply t entry =
  Durable_doc.apply t.primary entry;
  t.ops <- t.ops + 1;
  if t.ops mod t.config.checkpoint_every = 0 then begin
    (* Flush, let the shipper chain the flushed records, then rotate —
       otherwise the checkpoint's truncation would eat journal records
       the shipper never saw. *)
    Durable_doc.sync t.primary;
    Shipper.pump t.shipper ~now:t.clock;
    Durable_doc.checkpoint t.primary
  end;
  pump t

let quiesce ?(max_pumps = 256) t =
  Durable_doc.sync t.primary;
  let pumps = ref 0 in
  while
    (not (caught_up t))
    && !pumps < max_pumps
    && Option.is_none (Shipper.failed t.shipper)
  do
    pump t;
    incr pumps
  done;
  caught_up t

let failover t = Replica.promote t.replica

let reconnect t =
  Channel.reconnect t.down;
  Channel.reconnect t.up;
  Shipper.reset t.shipper;
  t.clock <- t.clock + 1;
  Replica.hello t.replica ~now:t.clock

let replace_replica ?io ?store t =
  let io = Option.value io ~default:t.replica_io in
  let r =
    Replica.create ~io ~dir:t.replica_dir
      ~group_commit:t.config.replica_group_commit
      ~checkpoint_every:t.config.checkpoint_every ?store ~inbox:t.down
      ~outbox:t.up ()
  in
  t.replica <- r;
  t.clock <- t.clock + 1;
  Replica.hello r ~now:t.clock;
  r
