(* Monomorphic comparison prelude (lint rule R2). *)
let ( >= ) : int -> int -> bool = Stdlib.( >= )
let ( > ) : int -> int -> bool = Stdlib.( > )
let ( < ) : int -> int -> bool = Stdlib.( < )
let ( <= ) : int -> int -> bool = Stdlib.( <= )
let min : int -> int -> int = Stdlib.min

type policy = {
  base : int;
  factor : int;
  cap : int;
  max_attempts : int;
  deadline : int;
}

let default_policy =
  { base = 1; factor = 2; cap = 16; max_attempts = 8; deadline = 200 }

type error =
  | Exhausted of { attempts : int }
  | Deadline_exceeded of { waited : int; deadline : int }

let pp_error ppf = function
  | Exhausted { attempts } ->
    Format.fprintf ppf "retries exhausted after %d attempts" attempts
  | Deadline_exceeded { waited; deadline } ->
    Format.fprintf ppf "send deadline exceeded (%d ticks waited, deadline %d)"
      waited deadline

let delay p ~attempt =
  if attempt <= 0 then invalid_arg "Backoff.delay: attempt must be >= 1";
  (* base * factor^(attempt-1), capped — computed with an explicit loop
     that stops at the cap so large attempt counts cannot overflow. *)
  let d = ref p.base in
  let i = ref 1 in
  while !i < attempt && !d < p.cap do
    d := !d * p.factor;
    incr i
  done;
  min !d p.cap

let check p ~attempt ~waited =
  if waited > p.deadline then
    Error (Deadline_exceeded { waited; deadline = p.deadline })
  else if attempt >= p.max_attempts then Error (Exhausted { attempts = attempt })
  else Ok (delay p ~attempt:(attempt + 1))
