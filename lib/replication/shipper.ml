module Fault = Ltree_recovery.Fault
module Durable_doc = Ltree_recovery.Durable_doc
module Journal = Ltree_doc.Journal

(* Monomorphic comparison prelude (lint rule R2). *)
let ( = ) : int -> int -> bool = Stdlib.( = )
let ( < ) : int -> int -> bool = Stdlib.( < )
let ( <= ) : int -> int -> bool = Stdlib.( <= )
let ( > ) : int -> int -> bool = Stdlib.( > )
let ( >= ) : int -> int -> bool = Stdlib.( >= )
let min : int -> int -> int = Stdlib.min
let max : int -> int -> int = Stdlib.max

(* How far below the ack point payloads and chain links are retained,
   so a replica that recovers (regressing by at most its group-commit
   buffer plus some reordering) resumes on data frames instead of
   forcing a snapshot re-ship. *)
let keep_window = 64

type config = {
  policy : Backoff.policy;
  window : int;
  handshake_every : int;
}

let default_config =
  { policy = Backoff.default_policy; window = 16; handshake_every = 8 }

type error = Send_failed of { seq : int; reason : Backoff.error }

let pp_error ppf (Send_failed { seq; reason }) =
  Format.fprintf ppf "shipping record %d failed: %a" seq Backoff.pp_error
    reason

type inflight = {
  mutable attempts : int;
  first_sent : int;
  mutable next_due : int;
}

type stats = {
  frames_sent : int;
  retries : int;
  backoff_ticks : int;
  snapshots_sent : int;
  handshakes_sent : int;
  acks_seen : int;
  hellos_seen : int;
  bad_frames : int;
}

type t = {
  io : Fault.io;
  dir : string;
  store : Durable_doc.t;
  down : Channel.t;
  up : Channel.t;
  config : config;
  buf : Frame.Assembler.asm;
  retention : (int, string) Hashtbl.t;
  chains : (int, int) Hashtbl.t;
  inflight : (int, inflight) Hashtbl.t;
  mutable chain_top : int;
  mutable chain_base : int;
  mutable broken : bool;
  mutable acked : int option;
  mutable snap_inflight : inflight option;
  mutable snap_base : int;
  mutable failed : error option;
  mutable acked_progress : int;
  mutable force_handshake : bool;
  mutable frames_sent : int;
  mutable retries : int;
  mutable backoff_ticks : int;
  mutable snapshots_sent : int;
  mutable handshakes_sent : int;
  mutable acks_seen : int;
  mutable hellos_seen : int;
  mutable bad_frames : int;
}

let ship_latency_hist () =
  Ltree_obs.Registry.histogram ~name:"repl_ship_latency_ticks"
    ~help:"virtual ticks between a record's first send and its ack"
    ~bounds:(Ltree_obs.Histogram.log2_bounds ~start:1. ~count:12)
    ()

let send_attempts_hist () =
  Ltree_obs.Registry.histogram ~name:"repl_send_attempts"
    ~help:"sends of one record before it was acked (1 = no retry); \
           _count doubles as the acked-record counter"
    ~bounds:(Ltree_obs.Histogram.linear_bounds ~start:1. ~step:1. ~count:10)
    ()

let backoff_hist () =
  Ltree_obs.Registry.histogram ~name:"repl_backoff_ticks"
    ~help:"backoff delay chosen per retry; _count doubles as the retry \
           counter, _sum as total ticks spent backing off"
    ~bounds:(Ltree_obs.Histogram.log2_bounds ~start:1. ~count:8)
    ()

let snapshot_path t =
  match Durable_doc.newest_valid_snapshot t.io ~dir:t.dir with
  | Ok (source, _ldoc, base_seq, _epoch, _faults) ->
    let file =
      match source with
      | Durable_doc.Current -> "snapshot"
      | Durable_doc.Previous -> "snapshot.prev"
    in
    Some (Filename.concat t.dir file, base_seq)
  | Error (_ : Durable_doc.fault list) -> None

let create ~io ~dir ~store ~down ~up ?(config = default_config) () =
  let base = Durable_doc.last_seq store in
  let chains = Hashtbl.create 64 in
  let t =
    {
      io;
      dir;
      store;
      down;
      up;
      config;
      buf = Frame.Assembler.create ();
      retention = Hashtbl.create 64;
      chains;
      inflight = Hashtbl.create 16;
      chain_top = base;
      chain_base = base;
      broken = false;
      acked = None;
      snap_inflight = None;
      snap_base = -1;
      failed = None;
      acked_progress = 0;
      force_handshake = false;
      frames_sent = 0;
      retries = 0;
      backoff_ticks = 0;
      snapshots_sent = 0;
      handshakes_sent = 0;
      acks_seen = 0;
      hellos_seen = 0;
      bad_frames = 0;
    }
  in
  (* Anchor the chain at the store's current snapshot so the very first
     catch-up ships a chain value both ends can extend from. *)
  (match snapshot_path t with
  | Some (path, base_seq) when base_seq = base -> (
    match io.Fault.read_file path with
    | Some bytes -> Hashtbl.replace chains base (Chain.anchor bytes)
    | None -> t.broken <- true)
  | Some _ | None -> t.broken <- true);
  t

let failed t = t.failed
let acked t = t.acked

let stats t =
  {
    frames_sent = t.frames_sent;
    retries = t.retries;
    backoff_ticks = t.backoff_ticks;
    snapshots_sent = t.snapshots_sent;
    handshakes_sent = t.handshakes_sent;
    acks_seen = t.acks_seen;
    hellos_seen = t.hellos_seen;
    bad_frames = t.bad_frames;
  }

let reset t =
  t.failed <- None;
  Hashtbl.reset t.inflight;
  t.snap_inflight <- None

(* Fold newly appended journal records into retention + chain.  Scanning
   is read-only, so this adds no write points to the primary. *)
let ingest t =
  let scan = Durable_doc.scan_journal t.io ~dir:t.dir in
  List.iter
    (fun (seq, entry) ->
      if seq > t.chain_top then
        if seq = t.chain_top + 1 then begin
          let payload = Journal.entry_to_line entry in
          let prev = Hashtbl.find t.chains t.chain_top in
          Hashtbl.replace t.chains seq (Chain.extend ~prev ~seq ~payload);
          Hashtbl.replace t.retention seq payload;
          t.chain_top <- seq
        end
        else
          (* Records vanished between pumps (a checkpoint truncated the
             journal before we scanned it): continuity is lost and only
             a snapshot re-ship can re-anchor. *)
          t.broken <- true)
    scan.Durable_doc.records

let prune t ~acked =
  let cut = acked - keep_window in
  Hashtbl.filter_map_inplace
    (fun seq v -> if seq < cut then None else Some v)
    t.retention;
  Hashtbl.filter_map_inplace
    (fun seq v -> if seq < cut then None else Some v)
    t.chains;
  t.chain_base <- max t.chain_base cut

let on_ack t ~now seq =
  t.acks_seen <- t.acks_seen + 1;
  if Ltree_obs.Recorder.is_enabled () then
    Ltree_obs.Recorder.note ~tick:now ~kind:"channel"
      ~attrs:[ ("seq", string_of_int seq) ]
      "ack";
  let prev = match t.acked with None -> -1 | Some a -> a in
  if seq > prev then begin
    t.acked <- Some seq;
    t.acked_progress <- t.acked_progress + (seq - max prev 0);
    Hashtbl.iter
      (fun s (fl : inflight) ->
        if s <= seq then begin
          Ltree_obs.Histogram.observe_int (ship_latency_hist ())
            (max 1 (now - fl.first_sent));
          Ltree_obs.Histogram.observe_int (send_attempts_hist ()) fl.attempts;
          (* The cumulative ack is the moment the primary knows the
             record is applied and readable on the replica: the end of
             its causal waterfall. *)
          match Hashtbl.find_opt t.retention s with
          | Some payload ->
            Ltree_obs.Causal.stamp ~tick:now Ltree_obs.Causal.Readable ~seq:s
              ~payload
          | None -> ()
        end)
      t.inflight;
    Hashtbl.filter_map_inplace
      (fun s fl -> if s <= seq then None else Some fl)
      t.inflight;
    (match t.snap_inflight with
    | Some _ when seq >= t.snap_base -> t.snap_inflight <- None
    | _ -> ());
    prune t ~acked:seq
  end

let on_hello t seq =
  t.hellos_seen <- t.hellos_seen + 1;
  (* A hello overrides the cumulative ack — the replica may legitimately
     have regressed (it recovered from its own disk, losing its
     group-commit buffer). *)
  t.acked <- (if seq < 0 then None else Some seq);
  Hashtbl.reset t.inflight;
  t.snap_inflight <- None;
  t.failed <- None;
  t.acked_progress <- 0;
  t.force_handshake <- seq >= 0

let process_up t ~now =
  List.iter
    (fun line ->
      match Frame.decode line with
      | Error (_ : Frame.error) -> t.bad_frames <- t.bad_frames + 1
      | Ok (Frame.Ack { seq; epoch = _ }) -> on_ack t ~now seq
      | Ok (Frame.Hello { seq; epoch = _ }) -> on_hello t seq
      | Ok (Frame.Data _ | Frame.Snapshot _ | Frame.Handshake _) ->
        t.bad_frames <- t.bad_frames + 1)
    (Frame.Assembler.feed t.buf (Channel.drain t.up ~now))

(* Ship the current snapshot as the catch-up base.  When the snapshot
   file lags the store (records applied since the last rotation), force
   a checkpoint first — syncing and re-ingesting in between so the
   truncated records are already chained. *)
let send_snapshot_now t ~now =
  let fresh =
    match snapshot_path t with
    | Some (path, base_seq)
      when base_seq = Durable_doc.last_seq t.store
           && Durable_doc.pending t.store = 0 ->
      Some (path, base_seq)
    | Some _ | None -> None
  in
  let resolved =
    match fresh with
    | Some pb -> Some pb
    | None ->
      Durable_doc.sync t.store;
      ingest t;
      Durable_doc.checkpoint t.store;
      snapshot_path t
  in
  match resolved with
  | None -> t.broken <- true
  | Some (path, base) -> (
    match t.io.Fault.read_file path with
    | None -> t.broken <- true
    | Some bytes ->
      if t.broken || not (Hashtbl.mem t.chains base) then begin
        Hashtbl.reset t.chains;
        Hashtbl.reset t.retention;
        Hashtbl.replace t.chains base (Chain.anchor bytes);
        t.chain_top <- base;
        t.chain_base <- base;
        t.broken <- false
      end;
      let chain = Hashtbl.find t.chains base in
      Channel.send t.down ~now
        (Frame.encode
           (Snapshot
              { epoch = Durable_doc.epoch t.store; base_seq = base; chain;
                data = bytes }));
      t.frames_sent <- t.frames_sent + 1;
      t.snapshots_sent <- t.snapshots_sent + 1;
      if Ltree_obs.Recorder.is_enabled () then
        Ltree_obs.Recorder.note ~tick:now ~kind:"channel"
          ~attrs:[ ("base_seq", string_of_int base) ]
          "snapshot_sent";
      t.snap_base <- base)

let step_snapshot t ~now =
  match t.snap_inflight with
  | None ->
    send_snapshot_now t ~now;
    t.snap_inflight <-
      Some
        {
          attempts = 1;
          first_sent = now;
          next_due = now + Backoff.delay t.config.policy ~attempt:1;
        }
  | Some fl ->
    if now >= fl.next_due then (
      match
        Backoff.check t.config.policy ~attempt:fl.attempts
          ~waited:(now - fl.first_sent)
      with
      | Ok delay ->
        send_snapshot_now t ~now;
        fl.attempts <- fl.attempts + 1;
        fl.next_due <- now + delay;
        t.retries <- t.retries + 1;
        t.backoff_ticks <- t.backoff_ticks + delay;
        Ltree_obs.Histogram.observe_int (backoff_hist ()) delay
      | Error reason ->
        if Ltree_obs.Recorder.is_enabled () then
          Ltree_obs.Recorder.note ~tick:now ~kind:"recovery"
            ~attrs:
              [ ("seq", string_of_int t.snap_base);
                ("reason", Format.asprintf "%a" Backoff.pp_error reason) ]
            "snapshot_send_failed";
        t.failed <- Some (Send_failed { seq = t.snap_base; reason }))

let send_data t ~now ~seq payload =
  Channel.send t.down ~now
    (Frame.encode
       (Frame.Data
          { epoch = Durable_doc.epoch t.store; hwm = t.chain_top; seq;
            trace = Ltree_obs.Causal.id_of ~seq ~payload; payload }));
  (* First-wins stamping keeps the first send's tick on retransmits;
     retries are attributed separately via [note_retry]. *)
  Ltree_obs.Causal.stamp ~tick:now Ltree_obs.Causal.Ship ~seq ~payload;
  t.frames_sent <- t.frames_sent + 1

let step_window t ~now ~acked =
  let hi = min t.chain_top (acked + t.config.window) in
  let seq = ref (acked + 1) in
  while Option.is_none t.failed && !seq <= hi do
    (match Hashtbl.find_opt t.retention !seq with
    | None -> seq := hi (* gap: the snapshot path takes over next pump *)
    | Some payload -> (
      match Hashtbl.find_opt t.inflight !seq with
      | None ->
        send_data t ~now ~seq:!seq payload;
        Hashtbl.replace t.inflight !seq
          {
            attempts = 1;
            first_sent = now;
            next_due = now + Backoff.delay t.config.policy ~attempt:1;
          }
      | Some fl ->
        if now >= fl.next_due then (
          match
            Backoff.check t.config.policy ~attempt:fl.attempts
              ~waited:(now - fl.first_sent)
          with
          | Ok delay ->
            send_data t ~now ~seq:!seq payload;
            Ltree_obs.Causal.note_retry ~seq:!seq ~payload;
            fl.attempts <- fl.attempts + 1;
            fl.next_due <- now + delay;
            t.retries <- t.retries + 1;
            t.backoff_ticks <- t.backoff_ticks + delay;
            Ltree_obs.Histogram.observe_int (backoff_hist ()) delay;
            (* A stalled record is how an out-of-band replica write
               shows up from this side (the replica re-acks but never
               applies): probe the prefix so divergence surfaces
               instead of burning the retry budget silently. *)
            t.force_handshake <- true
          | Error reason ->
            if Ltree_obs.Recorder.is_enabled () then
              Ltree_obs.Recorder.note ~tick:now ~kind:"recovery"
                ~attrs:
                  [ ("seq", string_of_int !seq);
                    ("reason", Format.asprintf "%a" Backoff.pp_error reason) ]
                "send_failed";
            t.failed <- Some (Send_failed { seq = !seq; reason }))));
    incr seq
  done

let step_handshake t ~now ~acked =
  if
    (t.force_handshake || t.acked_progress >= t.config.handshake_every)
    && Hashtbl.mem t.chains acked
  then begin
    Channel.send t.down ~now
      (Frame.encode
         (Frame.Handshake
            { epoch = Durable_doc.epoch t.store; seq = acked;
              chain = Hashtbl.find t.chains acked }));
    t.frames_sent <- t.frames_sent + 1;
    t.handshakes_sent <- t.handshakes_sent + 1;
    if Ltree_obs.Recorder.is_enabled () then
      Ltree_obs.Recorder.note ~tick:now ~kind:"channel"
        ~attrs:[ ("seq", string_of_int acked) ]
        "handshake_sent";
    t.force_handshake <- false;
    t.acked_progress <- 0
  end

let pump t ~now =
  process_up t ~now;
  ingest t;
  if Option.is_none t.failed then
    match t.acked with
    | None -> step_snapshot t ~now
    | Some acked ->
      if acked < t.chain_top && not (Hashtbl.mem t.retention (acked + 1))
      then step_snapshot t ~now
      else begin
        step_handshake t ~now ~acked;
        step_window t ~now ~acked
      end
