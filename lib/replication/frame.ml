module Checksum = Ltree_recovery.Checksum

(* Monomorphic comparison prelude (lint rule R2). *)
let ( <> ) : int -> int -> bool = Stdlib.( <> )
let ( < ) : int -> int -> bool = Stdlib.( < )
let ( >= ) : int -> int -> bool = Stdlib.( >= )

type t =
  | Data of { epoch : int; hwm : int; seq : int; trace : int; payload : string }
  | Snapshot of { epoch : int; base_seq : int; chain : int; data : string }
  | Handshake of { epoch : int; seq : int; chain : int }
  | Ack of { epoch : int; seq : int }
  | Hello of { epoch : int; seq : int }

type error = Bad_crc of { want : int; got : int } | Malformed of string

let pp_error ppf = function
  | Bad_crc { want; got } ->
    Format.fprintf ppf "frame crc mismatch (want %s, got %s)"
      (Checksum.to_hex want) (Checksum.to_hex got)
  | Malformed detail -> Format.fprintf ppf "malformed frame: %s" detail

(* Snapshot payloads are whole files — newlines included — while the
   wire protocol is one frame per line, so the payload is escaped:
   backslash and newline only, everything else verbatim. *)
let escape s =
  if not (String.exists (fun c -> Char.equal c '\n' || Char.equal c '\\') s)
  then s
  else begin
    let b = Buffer.create (String.length s + 16) in
    String.iter
      (fun c ->
        match c with
        | '\n' -> Buffer.add_string b "\\n"
        | '\\' -> Buffer.add_string b "\\\\"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  end

let unescape s =
  let n = String.length s in
  let b = Buffer.create n in
  let rec go i =
    if i >= n then Ok (Buffer.contents b)
    else if Char.equal s.[i] '\\' then
      if i + 1 >= n then Error (Malformed "dangling escape")
      else (
        match s.[i + 1] with
        | 'n' ->
          Buffer.add_char b '\n';
          go (i + 2)
        | '\\' ->
          Buffer.add_char b '\\';
          go (i + 2)
        | c -> Error (Malformed (Printf.sprintf "bad escape \\%c" c)))
    else begin
      Buffer.add_char b s.[i];
      go (i + 1)
    end
  in
  go 0

let body = function
  | Data { epoch; hwm; seq; trace; payload } ->
    (* The trace id rides inside the CRC-covered body: damage to it
       surfaces as Bad_crc, never as a wrong causal parent. *)
    Printf.sprintf "D %d %d %d %s %s" epoch hwm seq (Checksum.to_hex trace)
      payload
  | Snapshot { epoch; base_seq; chain; data } ->
    Printf.sprintf "S %d %d %s %s" epoch base_seq (Checksum.to_hex chain)
      (escape data)
  | Handshake { epoch; seq; chain } ->
    Printf.sprintf "H %d %d %s" epoch seq (Checksum.to_hex chain)
  | Ack { epoch; seq } -> Printf.sprintf "A %d %d" epoch seq
  | Hello { epoch; seq } -> Printf.sprintf "R %d %d" epoch seq

let encode f =
  let body = body f in
  Printf.sprintf "F %s %s\n" (Checksum.to_hex (Checksum.crc32 body)) body

(* Cursor over the space-separated fields of a body; the final field of
   Data/Snapshot is "the rest of the line", so splitting eagerly would
   mangle payloads holding runs of spaces. *)
let next_field s pos =
  match String.index_from_opt s pos ' ' with
  | None -> (String.sub s pos (String.length s - pos), String.length s)
  | Some sp -> (String.sub s pos (sp - pos), sp + 1)

let rest s pos = String.sub s pos (String.length s - pos)

let int_field name s pos =
  let field, pos' = next_field s pos in
  match int_of_string_opt field with
  | Some v -> Ok (v, pos')
  | None -> Error (Malformed (Printf.sprintf "bad %s field %S" name field))

let crc_field name s pos =
  let field, pos' = next_field s pos in
  match Checksum.of_hex field with
  | Some v -> Ok (v, pos')
  | None -> Error (Malformed (Printf.sprintf "bad %s field %S" name field))

let ( let* ) = Result.bind

let decode_body b =
  if String.length b < 2 then Error (Malformed "truncated body")
  else
    let kind = b.[0] in
    if not (Char.equal b.[1] ' ') then Error (Malformed "bad kind separator")
    else
      let pos = 2 in
      match kind with
      | 'D' ->
        let* epoch, pos = int_field "epoch" b pos in
        let* hwm, pos = int_field "hwm" b pos in
        let* seq, pos = int_field "seq" b pos in
        let* trace, pos = crc_field "trace" b pos in
        Ok (Data { epoch; hwm; seq; trace; payload = rest b pos })
      | 'S' ->
        let* epoch, pos = int_field "epoch" b pos in
        let* base_seq, pos = int_field "base_seq" b pos in
        let* chain, pos = crc_field "chain" b pos in
        let* data = unescape (rest b pos) in
        Ok (Snapshot { epoch; base_seq; chain; data })
      | 'H' ->
        let* epoch, pos = int_field "epoch" b pos in
        let* seq, pos = int_field "seq" b pos in
        let* chain, (_ : int) = crc_field "chain" b pos in
        Ok (Handshake { epoch; seq; chain })
      | 'A' ->
        let* epoch, pos = int_field "epoch" b pos in
        let* seq, (_ : int) = int_field "seq" b pos in
        Ok (Ack { epoch; seq })
      | 'R' ->
        let* epoch, pos = int_field "epoch" b pos in
        let* seq, (_ : int) = int_field "seq" b pos in
        Ok (Hello { epoch; seq })
      | c -> Error (Malformed (Printf.sprintf "unknown frame kind %C" c))

module Assembler = struct
  type asm = Buffer.t

  let create () = Buffer.create 256

  (* A torn chunk leaves a partial line that merges with the next
     arrival; the merged line fails its frame CRC downstream and is
     dropped — retransmission heals it. *)
  let feed t chunks =
    List.iter (Buffer.add_string t) chunks;
    let data = Buffer.contents t in
    Buffer.clear t;
    let lines = ref [] in
    let start = ref 0 in
    String.iteri
      (fun i c ->
        if Char.equal c '\n' then begin
          lines := String.sub data !start (i - !start) :: !lines;
          start := i + 1
        end)
      data;
    Buffer.add_string t (String.sub data !start (String.length data - !start));
    List.rev !lines
end

let decode line =
  (* "F <crc8> <body>" — fixed positions, so payload bytes are exact. *)
  if String.length line < 11 then Error (Malformed "line too short")
  else if not (Char.equal line.[0] 'F' && Char.equal line.[1] ' ') then
    Error (Malformed "bad magic")
  else if not (Char.equal line.[10] ' ') then
    Error (Malformed "bad crc separator")
  else
    match Checksum.of_hex (String.sub line 2 8) with
    | None -> Error (Malformed "bad crc field")
    | Some want ->
      let body = rest line 11 in
      let got = Checksum.crc32 body in
      if want <> got then Error (Bad_crc { want; got })
      else decode_body body
