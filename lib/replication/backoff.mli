(** Bounded retry with capped exponential backoff, on the virtual clock.

    The policy is pure data and every function is deterministic, so the
    shipper's retry behaviour replays exactly under a seeded crash cell.
    Time is in {e ticks} of the replication session's virtual clock (one
    tick per pump), not wall-clock. *)

type policy = {
  base : int;  (** delay before the first retry, in ticks *)
  factor : int;  (** multiplier per subsequent attempt *)
  cap : int;  (** delays never exceed this *)
  max_attempts : int;  (** total sends of one record before giving up *)
  deadline : int;  (** max ticks between first send and success *)
}

val default_policy : policy
(** [{base = 1; factor = 2; cap = 16; max_attempts = 8; deadline = 200}] *)

type error =
  | Exhausted of { attempts : int }
  | Deadline_exceeded of { waited : int; deadline : int }

val pp_error : Format.formatter -> error -> unit

(** [delay p ~attempt] is the backoff after send number [attempt]
    ([>= 1]) fails: [min cap (base * factor^(attempt-1))].  Monotone
    non-decreasing in [attempt]; raises [Invalid_argument] on
    [attempt <= 0]. *)
val delay : policy -> attempt:int -> int

(** [check p ~attempt ~waited] decides whether a record that has been
    sent [attempt] times and first went out [waited] ticks ago may be
    retried: [Ok delay_before_next] or the typed give-up reason.
    Deadline wins over exhaustion when both apply. *)
val check : policy -> attempt:int -> waited:int -> (int, error) result
