(** One primary + one replica wired over injectable channels, driven by
    a shared virtual clock.

    The session owns the tick counter: every {!pump} advances it once
    and runs one shipper round then one replica round, so an entire
    replication scenario — including channel noise, retries, backoff
    delays, and failover — is a deterministic function of the
    configuration and fault plans.  One subtlety it owns: before a
    primary checkpoint it syncs and pumps the shipper, so the rotation's
    journal truncation never eats records the shipper has not chained
    yet. *)

type config = {
  group_commit : int;  (** primary store group commit *)
  replica_group_commit : int;
  checkpoint_every : int;  (** ops between rotations, both ends *)
  shipper : Shipper.config;
  down_plan : Channel.plan;  (** primary → replica *)
  up_plan : Channel.plan;  (** replica → primary (acks) *)
  attach_pumps : int;  (** bound on the bootstrap loop in [create] *)
}

val default_config : config

type t

(** [create ?config ~primary_io ~primary_dir ~replica_io ~replica_dir
    ldoc] initializes the primary store around [ldoc], builds the
    channels and both endpoints, and runs a bounded attach loop so the
    bootstrap snapshot can land.  May raise
    {!Ltree_recovery.Fault.Crash} when either [io] is armed. *)
val create :
  ?config:config ->
  primary_io:Ltree_recovery.Fault.io ->
  primary_dir:string ->
  replica_io:Ltree_recovery.Fault.io ->
  replica_dir:string ->
  Ltree_doc.Labeled_doc.t ->
  t

(** [apply t entry] applies one operation to the primary and pumps the
    session one tick. *)
val apply : t -> Ltree_doc.Journal.entry -> unit

(** [pump t] advances the clock one tick and runs both endpoints. *)
val pump : t -> unit

(** [quiesce ?max_pumps t] syncs the primary and pumps until the
    replica has applied everything (true) or the bound is hit / the
    shipper parked on a typed failure (false). *)
val quiesce : ?max_pumps:int -> t -> bool

(** [failover t] promotes the replica (see {!Replica.promote}). *)
val failover :
  t ->
  ( Ltree_recovery.Durable_doc.report * Ltree_recovery.Durable_doc.t,
    Replica.error )
  result

(** [reconnect t] heals severed channels, clears the shipper's retry
    state, and re-announces the replica. *)
val reconnect : t -> unit

(** [replace_replica ?io ?store t] swaps in a fresh replica endpoint on
    the same channels — the re-attach path after a replica crash:
    recover the store from the surviving files, then pass it (and the
    post-crash [io]) here.  Sends a hello so the shipper resyncs. *)
val replace_replica :
  ?io:Ltree_recovery.Fault.io ->
  ?store:Ltree_recovery.Durable_doc.t ->
  t ->
  Replica.t

(** {1 Inspection} *)

val primary : t -> Ltree_recovery.Durable_doc.t
val replica : t -> Replica.t
val shipper : t -> Shipper.t
val clock : t -> int
val down : t -> Channel.t
val up : t -> Channel.t
val caught_up : t -> bool
