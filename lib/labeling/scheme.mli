(** The common contract for order-preserving labeling schemes.

    A scheme maintains an ordered list of items, each carrying an integer
    label such that list order and label order coincide at all times.
    Handles stay valid across relabelings; [label] always returns the
    current label.  Relabeling work is reported through the
    {!Ltree_metrics.Counters.t} supplied at creation time (one [relabel]
    tick per overwritten label), which is how the benchmark harness compares
    schemes. *)

module type S = sig
  type t
  type handle

  val name : string

  val create : ?counters:Ltree_metrics.Counters.t -> unit -> t

  (** [bulk_load ?counters n] builds a fresh structure holding [n] items,
      spread as evenly as the scheme can (paper §2.2); returns the handles
      in list order.  Bulk loading does not count as relabeling. *)
  val bulk_load :
    ?counters:Ltree_metrics.Counters.t -> int -> t * handle array

  (** [insert_first t] inserts in front of every existing item (or into an
      empty [t]). *)
  val insert_first : t -> handle

  val insert_after : t -> handle -> handle
  val insert_before : t -> handle -> handle

  (** [delete t h] removes the item.  Schemes follow the paper's stance
      (§2.3): deletion never relabels. *)
  val delete : t -> handle -> unit

  val label : t -> handle -> int
  val length : t -> int

  (** [compare t a b] orders two live handles; consistent with list order. *)
  val compare : t -> handle -> handle -> int

  (** [bits_per_label t] is the number of bits needed for the largest label
      the scheme may currently hand out. *)
  val bits_per_label : t -> int

  (** [check t] validates the scheme's internal invariants ([Failure] on
      violation). *)
  val check : t -> unit
end

(** Number of bits needed to represent [v >= 0].
    Raises [Invalid_argument] on negative input. *)
val bits_for_value : int -> int
