(* Labels are dyadic fractions in (0, 1), kept as canonical bit strings
   (no trailing zeros, never empty).  The midpoint of two distinct
   dyadics is again dyadic, so a fresh label always exists between any
   two neighbours — and nothing else ever moves. *)

type label = string (* over '0'/'1'; b1 is the 2^-1 bit *)

type cell = {
  lab : label;
  mutable prev : cell option;
  mutable next : cell option;
}

type handle = cell

type t = {
  mutable first : cell option;
  mutable last : cell option;
  mutable n : int;
}

let create () = { first = None; last = None; n = 0 }
let length t = t.n
let label _ h = h.lab
let bits lab = String.length lab

(* Compare as fractions: lexicographic with implicit 0-padding; canonical
   form (no trailing zeros) makes prefix-equal imply shorter < longer. *)
let compare_labels a b =
  let la = String.length a and lb = String.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else
      let ca = if i < la then a.[i] else '0' in
      let cb = if i < lb then b.[i] else '0' in
      if ca = cb then go (i + 1) else Stdlib.compare ca cb
  in
  go 0

let canonical s =
  let n = ref (String.length s) in
  while !n > 0 && s.[!n - 1] = '0' do
    decr n
  done;
  String.sub s 0 !n

(* (a + b) / 2 in exact binary arithmetic: pad to a common width, add
   with carry, and interpret the (width+1)-bit sum one place further
   right. *)
let midpoint a b =
  let w = max (String.length a) (String.length b) in
  let bit s i = if i < String.length s then Char.code s.[i] - 48 else 0 in
  let out = Bytes.make (w + 1) '0' in
  let carry = ref 0 in
  for i = w - 1 downto 0 do
    let sum = bit a i + bit b i + !carry in
    Bytes.set out (i + 1) (Char.chr (48 + (sum land 1)));
    carry := sum lsr 1
  done;
  Bytes.set out 0 (Char.chr (48 + !carry));
  canonical (Bytes.to_string out)

(* Virtual bounds: 0 is the empty string, 1 is handled by midpoint with
   an explicit "1" whose value as a label would be 1/2 — so instead
   (a + 1) / 2 is "1" followed by a shifted one position right. *)
let midpoint_with_one a = canonical ("1" ^ a)

let fresh_between lo hi =
  match (lo, hi) with
  | None, None -> "1" (* 1/2 *)
  | Some a, None -> midpoint_with_one a.lab
  | None, Some b -> midpoint "" b.lab
  | Some a, Some b -> midpoint a.lab b.lab

let link t ~prev ~next lab =
  let cell = { lab; prev; next } in
  (match prev with Some p -> p.next <- Some cell | None -> t.first <- Some cell);
  (match next with Some x -> x.prev <- Some cell | None -> t.last <- Some cell);
  t.n <- t.n + 1;
  cell

let insert_first t =
  let next = t.first in
  let lab = fresh_between None next in
  link t ~prev:None ~next lab

let insert_after t h =
  let lab = fresh_between (Some h) h.next in
  link t ~prev:(Some h) ~next:h.next lab

let insert_before t h =
  let lab = fresh_between h.prev (Some h) in
  link t ~prev:h.prev ~next:(Some h) lab

let delete t h =
  (match h.prev with Some p -> p.next <- h.next | None -> t.first <- h.next);
  (match h.next with Some x -> x.prev <- h.prev | None -> t.last <- h.prev);
  h.prev <- None;
  h.next <- None;
  t.n <- t.n - 1

let bulk_load n =
  let t = create () in
  if n = 0 then (t, [||])
  else begin
    (* Spread evenly: i-th label = (i + 1) / 2^k with 2^k > n. *)
    let k = ref 1 in
    while 1 lsl !k <= n do
      incr k
    done;
    let to_bits v =
      let buf = Bytes.make !k '0' in
      for j = 0 to !k - 1 do
        if v land (1 lsl (!k - 1 - j)) <> 0 then Bytes.set buf j '1'
      done;
      canonical (Bytes.to_string buf)
    in
    let handles =
      Array.init n (fun i ->
          let lab = to_bits (i + 1) in
          let prev = t.last in
          link t ~prev ~next:None lab)
    in
    (t, handles)
  end

let max_bits t =
  let rec go acc = function
    | None -> acc
    | Some c -> go (max acc (String.length c.lab)) c.next
  in
  go 0 t.first

let label_to_string lab = "0." ^ lab

let check t =
  let count = ref 0 in
  let rec go prev = function
    | None -> ()
    | Some c ->
      incr count;
      (match prev with
       | Some p ->
         if compare_labels p.lab c.lab >= 0 then
           failwith "Bitstring_label: labels out of order"
       | None -> ());
      if c.lab = "" then failwith "Bitstring_label: empty label";
      go (Some c) c.next
  in
  go None t.first;
  if !count <> t.n then failwith "Bitstring_label: length out of sync"
