type kind =
  | Element of string
  | Text of string
  | Comment of string
  | Pi of string * string

type node = {
  node_id : int; (* process-unique, for identity-keyed tables *)
  mutable node_kind : kind;
  mutable node_attrs : (string * string) list;
  mutable node_children : node list;
  mutable node_parent : node option;
}

type document = {
  mutable root : node option;
  mutable xml_decl : (string * string) list option;
  mutable doctype : string option;
  mutable prolog_misc : node list;
}

(* Atomic so documents can be built from worker domains without ever
   handing out a duplicate node id. *)
let next_id = Atomic.make 0

let make kind =
  let id = Atomic.fetch_and_add next_id 1 + 1 in
  { node_id = id; node_kind = kind; node_attrs = [];
    node_children = []; node_parent = None }

let id n = n.node_id

let element ?(attrs = []) name =
  let n = make (Element name) in
  n.node_attrs <- attrs;
  n

let text s = make (Text s)
let comment s = make (Comment s)
let pi ~target ~data = make (Pi (target, data))

let document root =
  { root = Some root; xml_decl = None; doctype = None; prolog_misc = [] }

let kind n = n.node_kind

let name n =
  match n.node_kind with
  | Element name -> name
  | Text _ | Comment _ | Pi _ ->
    invalid_arg "Dom.name: not an element"

let attrs n = n.node_attrs
let attr n k = List.assoc_opt k n.node_attrs

let set_attr n k v =
  n.node_attrs <- (k, v) :: List.remove_assoc k n.node_attrs

let set_text n s =
  match n.node_kind with
  | Text _ -> n.node_kind <- Text s
  | Element _ | Comment _ | Pi _ ->
    invalid_arg "Dom.set_text: not a text node"

let parent n = n.node_parent
let children n = n.node_children
let child_count n = List.length n.node_children

let is_element n =
  match n.node_kind with Element _ -> true | Text _ | Comment _ | Pi _ -> false

let is_text n =
  match n.node_kind with Text _ -> true | Element _ | Comment _ | Pi _ -> false

let require_element n what =
  match n.node_kind with
  | Element _ -> ()
  | Text _ | Comment _ | Pi _ ->
    invalid_arg (what ^ ": target is not an element")

let require_detached c what =
  match c.node_parent with
  | Some _ -> invalid_arg (what ^ ": child already attached")
  | None -> ()

let append_child p c =
  require_element p "Dom.append_child";
  require_detached c "Dom.append_child";
  p.node_children <- p.node_children @ [ c ];
  c.node_parent <- Some p

let insert_child p ~index c =
  require_element p "Dom.insert_child";
  require_detached c "Dom.insert_child";
  let n = List.length p.node_children in
  if index < 0 || index > n then invalid_arg "Dom.insert_child: bad index";
  let rec splice i = function
    | rest when i = index -> c :: rest
    | [] -> assert false
    | x :: rest -> x :: splice (i + 1) rest
  in
  p.node_children <- splice 0 p.node_children;
  c.node_parent <- Some p

let index_in_parent n =
  match n.node_parent with
  | None -> invalid_arg "Dom.index_in_parent: detached node"
  | Some p ->
    let rec go i = function
      | [] -> invalid_arg "Dom.index_in_parent: broken parent link"
      | x :: rest -> if x == n then i else go (i + 1) rest
    in
    go 0 p.node_children

let insert_before ~anchor c =
  match anchor.node_parent with
  | None -> invalid_arg "Dom.insert_before: anchor is detached"
  | Some p -> insert_child p ~index:(index_in_parent anchor) c

let insert_after ~anchor c =
  match anchor.node_parent with
  | None -> invalid_arg "Dom.insert_after: anchor is detached"
  | Some p -> insert_child p ~index:(index_in_parent anchor + 1) c

let remove n =
  match n.node_parent with
  | None -> invalid_arg "Dom.remove: already detached"
  | Some p ->
    p.node_children <- List.filter (fun c -> c != n) p.node_children;
    n.node_parent <- None

let rec iter_preorder n f =
  f n;
  List.iter (fun c -> iter_preorder c f) n.node_children

let descendants n =
  let acc = ref [] in
  iter_preorder n (fun x -> acc := x :: !acc);
  List.rev !acc

let elements_by_name n tag =
  let acc = ref [] in
  iter_preorder n (fun x ->
      match x.node_kind with
      | Element name when name = tag -> acc := x :: !acc
      | Element _ | Text _ | Comment _ | Pi _ -> ());
  List.rev !acc

let size n =
  let c = ref 0 in
  iter_preorder n (fun _ -> incr c);
  !c

let text_content n =
  let buf = Buffer.create 32 in
  iter_preorder n (fun x ->
      match x.node_kind with
      | Text s -> Buffer.add_string buf s
      | Element _ | Comment _ | Pi _ -> ());
  Buffer.contents buf

type event = E_start of node | E_end of node | E_atom of node

let events n =
  let acc = ref [] in
  let rec go n =
    match n.node_kind with
    | Element _ ->
      acc := E_start n :: !acc;
      List.iter go n.node_children;
      acc := E_end n :: !acc
    | Text _ | Comment _ | Pi _ -> acc := E_atom n :: !acc
  in
  go n;
  List.rev !acc

let event_count n =
  let c = ref 0 in
  iter_preorder n (fun x ->
      match x.node_kind with
      | Element _ -> c := !c + 2
      | Text _ | Comment _ | Pi _ -> incr c);
  !c

let rec equal_structure a b =
  match (a.node_kind, b.node_kind) with
  | Element na, Element nb ->
    na = nb
    && List.sort compare a.node_attrs = List.sort compare b.node_attrs
    && List.length a.node_children = List.length b.node_children
    && List.for_all2 equal_structure a.node_children b.node_children
  | Text x, Text y -> x = y
  | Comment x, Comment y -> x = y
  | Pi (t1, d1), Pi (t2, d2) -> t1 = t2 && d1 = d2
  | (Element _ | Text _ | Comment _ | Pi _), _ -> false

let rec pp ppf n =
  match n.node_kind with
  | Element name ->
    Format.fprintf ppf "@[<hv 2><%s" name;
    List.iter (fun (k, v) -> Format.fprintf ppf " %s=%S" k v) n.node_attrs;
    if n.node_children = [] then Format.fprintf ppf "/>"
    else begin
      Format.fprintf ppf ">";
      List.iter (fun c -> Format.fprintf ppf "@,%a" pp c) n.node_children;
      Format.fprintf ppf "@;<0 -2></%s>" name
    end;
    Format.fprintf ppf "@]"
  | Text s -> Format.fprintf ppf "%S" s
  | Comment s -> Format.fprintf ppf "<!--%s-->" s
  | Pi (t, d) -> Format.fprintf ppf "<?%s %s?>" t d
