(** Incremental per-tag secondary index over the stored label relation.

    For each tag, the live rows' [(start, end, row id)] triples as
    parallel untagged-int columns ({!Ltree_core.Column}) sorted by start
    label — the random-access sorted input the structural-join
    literature assumes, now in dense cache lines.  Unlike the old
    memoized index (dropped wholesale by every {!Label_sync.flush}),
    this one is {e maintained}: the sync layer logs exactly which rows
    of which tags changed ({!note_change}), and the next access to a
    dirty tag {e repairs} its columns in place — one bitset-guided pass
    dropping the touched and tombstoned rows from the sorted survivors,
    a small in-place sort of the changed batch, one backward galloping
    merge through the entry's own (pre-reserved) buffers — instead of
    re-sorting the world.  Steady-state repairs reuse every buffer they
    touch and allocate nothing.  Tombstones are compacted lazily by that
    same survivor pass.

    The index itself is memory-resident (as in experiment E8d); the row
    fetches a rebuild or repair performs go through the caller-supplied
    [fetch], which charges page reads to the shared pager.  Sort and
    merge comparisons are charged to the given counters, so the
    comparison totals of E-table experiments account for index
    maintenance honestly. *)

type t

(** One tag's slice: parallel columns, [starts] strictly increasing on
    [0 .. len).  [stamp] is the index {!generation} at which the entry
    was last brought up to date — snapshots compare it to skip
    re-freezing unchanged tags.  Treat as read-only — the index mutates
    the columns in place on repair. *)
type entry = {
  starts : Ltree_core.Column.t;
  ends : Ltree_core.Column.t;
  rids : Ltree_core.Column.t;
  mutable len : int;
  mutable stamp : int;
}

(** Mutable cursor state for the zero-alloc join spine: the join loop in
    {!Query} keeps its two cursors here instead of in local refs, which
    vanilla OCaml would box. *)
type jstate = {
  mutable js_ai : int;
  mutable js_di : int;
  mutable js_done : bool;
}

(** Preallocated query workspace, one per index, reused across queries:
    [w_stack] holds the open ancestor ends, [w_out] the emitted row ids,
    [w_mark] is {!Ltree_core.Column.sort_dedup} scratch.  A query's
    result read from [w_out] is only valid until the next query on the
    same index. *)
type workspace = {
  w_stack : Ltree_core.Column.t;
  w_out : Ltree_core.Column.t;
  w_mark : Ltree_core.Column.t;
  w_js : jstate;
}

(** Maintenance counters: [repairs] counts dirty-tag merge repairs (each
    one is a full re-sort avoided), [full_rebuilds] counts from-scratch
    column builds (first access to a tag, or after {!invalidate_all}),
    [merged_rows] the changed rows merged across all repairs. *)
type stats = { repairs : int; full_rebuilds : int; merged_rows : int }

val create : unit -> t
val stats : t -> stats

(** [workspace t] is [t]'s preallocated query workspace. *)
val workspace : t -> workspace

(** [generation t] is a monotone stamp bumped by every {!note_change} /
    {!invalidate_all}; equal stamps mean the index saw no change. *)
val generation : t -> int

(** [note_change t ~tag ~rid] logs that row [rid] of [tag] was updated,
    inserted or tombstoned — called by {!Label_sync.flush} per written
    row.  O(1); the repair happens lazily at the tag's next access. *)
val note_change : t -> tag:string -> rid:int -> unit

(** [invalidate_all t] drops every materialized tag (full rebuild on
    next access).  For wholesale events the sync layer cannot
    enumerate, e.g. restoring a store against a compacted document. *)
val invalidate_all : t -> unit

(** Raised by {!clean} when the tag is unmaterialized or has pending
    changes. *)
exception Dirty

(** [clean t tag] is [tag]'s entry when it is materialized and has no
    pending changes — the allocation-free lookup the hot query spine
    uses; raises {!Dirty} otherwise, and the caller falls back to
    {!entry}. *)
val clean : t -> string -> entry

(** [entry t counters ~rids_of_tag ~fetch tag] returns [tag]'s
    up-to-date slice, rebuilding or repairing first when needed.
    [rids_of_tag] enumerates the tag's row ids (used only by full
    rebuilds); [fetch rid] returns [(start, end, dead)] and is expected
    to charge the page read. *)
val entry :
  t -> Ltree_metrics.Counters.t -> rids_of_tag:(string -> int list) ->
  fetch:(int -> int * int * bool) -> string -> entry

(** [upper_bound counters e key] is the first position in [e] with
    [start > key] (binary search, comparisons charged). *)
val upper_bound : Ltree_metrics.Counters.t -> entry -> int -> int

(** [check t ~fetch] verifies every clean (non-dirty) materialized tag:
    column lengths in sync, strictly increasing starts, no dead rows,
    columns agreeing with the backing rows.  Raises [Failure]
    otherwise. *)
val check : t -> fetch:(int -> int * int * bool) -> unit
