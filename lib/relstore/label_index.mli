(** Incremental per-tag secondary index over the stored label relation.

    For each tag, the live rows' [(start, end, row id)] triples as
    parallel int arrays sorted by start label — the random-access sorted
    input the structural-join literature assumes.  Unlike the old
    memoized index (dropped wholesale by every {!Label_sync.flush}),
    this one is {e maintained}: the sync layer logs exactly which rows
    of which tags changed ({!note_change}), and the next access to a
    dirty tag {e repairs} its arrays — one pass dropping the touched and
    tombstoned rows from the sorted survivors, a small sort of the
    changed batch, one merge — instead of re-sorting the world.
    Tombstones are compacted lazily by that same survivor pass.

    The index itself is memory-resident (as in experiment E8d); the row
    fetches a rebuild or repair performs go through the caller-supplied
    [fetch], which charges page reads to the shared pager.  Sort and
    merge comparisons are charged to the given counters, so the
    comparison totals of E-table experiments account for index
    maintenance honestly. *)

type t

(** One tag's slice: parallel arrays, [starts] strictly increasing on
    [0 .. len). Treat as read-only — the index mutates them in place on
    repair. *)
type entry = {
  mutable starts : int array;
  mutable ends : int array;
  mutable rids : int array;
  mutable len : int;
}

(** Maintenance counters: [repairs] counts dirty-tag merge repairs (each
    one is a full re-sort avoided), [full_rebuilds] counts from-scratch
    array builds (first access to a tag, or after {!invalidate_all}),
    [merged_rows] the changed rows merged across all repairs. *)
type stats = { repairs : int; full_rebuilds : int; merged_rows : int }

val create : unit -> t
val stats : t -> stats

(** [generation t] is a monotone stamp bumped by every {!note_change} /
    {!invalidate_all}; equal stamps mean the index saw no change. *)
val generation : t -> int

(** [note_change t ~tag ~rid] logs that row [rid] of [tag] was updated,
    inserted or tombstoned — called by {!Label_sync.flush} per written
    row.  O(1); the repair happens lazily at the tag's next access. *)
val note_change : t -> tag:string -> rid:int -> unit

(** [invalidate_all t] drops every materialized tag (full rebuild on
    next access).  For wholesale events the sync layer cannot
    enumerate, e.g. restoring a store against a compacted document. *)
val invalidate_all : t -> unit

(** [entry t counters ~rids_of_tag ~fetch tag] returns [tag]'s
    up-to-date slice, rebuilding or repairing first when needed.
    [rids_of_tag] enumerates the tag's row ids (used only by full
    rebuilds); [fetch rid] returns [(start, end, dead)] and is expected
    to charge the page read. *)
val entry :
  t -> Ltree_metrics.Counters.t -> rids_of_tag:(string -> int list) ->
  fetch:(int -> int * int * bool) -> string -> entry

(** [upper_bound counters e key] is the first position in [e] with
    [start > key] (binary search, comparisons charged). *)
val upper_bound : Ltree_metrics.Counters.t -> entry -> int -> int

(** [check t ~fetch] verifies every clean (non-dirty) materialized tag:
    strictly increasing starts, no dead rows, arrays agreeing with the
    backing rows.  Raises [Failure] otherwise. *)
val check : t -> fetch:(int -> int * int * bool) -> unit
