(** A miniature paged-storage simulator.

    The paper measures query and maintenance cost "as the number of disk
    accesses".  This module provides that yardstick: rows live in fixed
    size pages; a bounded LRU buffer pool tracks residency; a page touch
    that misses the pool counts as one [page_read] on the shared
    {!Ltree_metrics.Counters.t}.  Nothing is actually written to disk —
    the simulator is deterministic and measures exactly what the paper's
    cost model talks about. *)

type t

(** [create ?capacity counters] makes a pool holding up to [capacity]
    pages (default 64). *)
val create : ?capacity:int -> Ltree_metrics.Counters.t -> t

val counters : t -> Ltree_metrics.Counters.t

(** [touch ?write t ~table ~page] records a logical access to a page;
    counts a [page_read] when the page was not resident.  With
    [~write:true] the page is additionally marked dirty: its eventual
    write-back (at eviction or {!flush_dirty}) counts one
    [page_write].

    Residency is tracked in dense per-table page maps (untagged-int
    columns), so a touch costs two array loads and a store — no hashing
    and no allocation, which keeps the row fetches of the R9-audited
    query emit path on the zero-alloc spine. *)
val touch : ?write:bool -> t -> table:int -> page:int -> unit

(** [touch_read t ~table ~page] is [touch ~write:false], shaped for the
    R9-audited hot row-fetch path (no optional argument, hence no
    hidden default-handling closure). *)
val touch_read : t -> table:int -> page:int -> unit

(** [flush_dirty t] writes back every dirty page — each through the same
    per-key path eviction uses, so a page's dirty bit is consumed
    exactly once (one [page_write]) no matter how it leaves the pool —
    and returns how many pages were written. *)
val flush_dirty : t -> int

(** [flush t] writes back dirty pages, then empties the pool (e.g.
    between query plans, so each plan is measured cold).  Pages evicted
    before the flush already paid their write-back; flushing again does
    not recount them. *)
val flush : t -> unit

(** Number of dirty (written, not yet written-back) pages. *)
val dirty : t -> int

(** [fresh_table_id t] allocates a table namespace. *)
val fresh_table_id : t -> int

(** Number of resident pages. *)
val resident : t -> int
