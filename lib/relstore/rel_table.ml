(* Monomorphic comparison prelude (lint rule R2). *)
let ( = ) : int -> int -> bool = Stdlib.( = )
let ( < ) : int -> int -> bool = Stdlib.( < )
let ( > ) : int -> int -> bool = Stdlib.( > )
let ( >= ) : int -> int -> bool = Stdlib.( >= )
let max : int -> int -> int = Stdlib.max

type 'a t = {
  pager : Pager.t;
  table_id : int;
  name : string;
  rows_per_page : int;
  page_shift : int;  (* log2 rows_per_page when a power of two, else -1 *)
  mutable rows : 'a array;
  mutable n : int;
}

(* log2 of [v] when it is a power of two, -1 otherwise: lets [page_of]
   replace the integer division — surprisingly expensive next to the
   rest of the hot row-fetch path — with a shift. *)
let shift_of v =
  let rec go s p = if p = v then s else if p > v then -1 else go (s + 1) (p * 2) in
  go 0 1

let create pager ~name ~rows_per_page =
  if rows_per_page < 1 then
    invalid_arg "Rel_table.create: rows_per_page must be >= 1";
  { pager; table_id = Pager.fresh_table_id pager; name; rows_per_page;
    page_shift = shift_of rows_per_page; rows = [||]; n = 0 }

let name t = t.name
let length t = t.n

let append t row =
  if t.n = Array.length t.rows then begin
    let cap = max 16 (2 * t.n) in
    let bigger = Array.make cap row in
    Array.blit t.rows 0 bigger 0 t.n;
    t.rows <- bigger
  end;
  t.rows.(t.n) <- row;
  t.n <- t.n + 1;
  t.n - 1

let[@inline] page_of t id =
  if t.page_shift >= 0 then id lsr t.page_shift else id / t.rows_per_page

let[@ltree.hot] get t id =
  if id < 0 || id >= t.n then invalid_arg "Rel_table.get: bad row id";
  Pager.touch_read t.pager ~table:t.table_id ~page:(page_of t id);
  t.rows.(id)

let set t id row =
  if id < 0 || id >= t.n then invalid_arg "Rel_table.set: bad row id";
  Pager.touch ~write:true t.pager ~table:t.table_id ~page:(page_of t id);
  t.rows.(id) <- row

let iter t f =
  for id = 0 to t.n - 1 do
    if id mod t.rows_per_page = 0 then
      Pager.touch t.pager ~table:t.table_id ~page:(page_of t id);
    f id t.rows.(id)
  done

let pages t = if t.n = 0 then 0 else page_of t (t.n - 1) + 1
