(** Incremental maintenance of the stored label relation.

    An RDBMS that stores L-Tree labels (the label table of E8) must
    rewrite a row whenever the L-Tree relabels that node — this is where
    the paper's amortized relabeling bound turns into real write I/O.
    The labeled document reports exactly which nodes went stale
    ({!Ltree_doc.Labeled_doc.drain_dirty}, fed by the L-Tree's relabel
    hook); [flush] rewrites only those rows, appends rows for new nodes
    and tombstones rows of deleted ones.  Page-write counts accumulate on
    the shared pager (experiment E13). *)

type t

(** [create pager store ldoc] wires a store to its document.  The store
    must have been shredded from [ldoc] (or from an earlier state of
    it). *)
val create : Pager.t -> Shredder.label_store -> Ltree_doc.Labeled_doc.t -> t

type stats = {
  rows_updated : int;
  rows_inserted : int;
  rows_tombstoned : int;
}

(** [flush t] applies all pending label changes to the relation and
    returns what it wrote.  Queries over the store are exact again after
    a flush.  Raises [Failure] when the handle is stale (see
    {!resync}). *)
val flush : t -> stats

(** [check t] verifies that the relation agrees with the document's
    current labels (call after [flush]); raises [Failure] otherwise, and
    also when the handle is stale. *)
val check : t -> unit

(** {1 Crash recovery}

    After a restart the store's backing document is {e replaced} by the
    one {!Ltree_recovery.Durable_doc} reconstructs: same labels (§4.2
    determinism), fresh node identities, and possibly fewer operations
    than the store last saw (the crash may have rolled back a
    non-durable tail).  A pre-crash sync handle must therefore never
    write again. *)

(** [epoch t] is the store incarnation this handle is bound to; valid
    while it equals the store's [label_epoch]. *)
val epoch : t -> int

(** [resync t ldoc] rebinds [t]'s store to the recovered document
    [ldoc]: bumps the store epoch (staling every existing handle),
    drops the per-tag index wholesale, and reconciles every row against
    [ldoc] by durable start label — rows recomputed in place, rows whose
    label claims no recovered node tombstoned, unmatched recovered nodes
    appended.  Returns the replacement handle and what the
    reconciliation wrote.  Queries over the store are exact immediately
    afterwards. *)
val resync : t -> Ltree_doc.Labeled_doc.t -> t * stats
