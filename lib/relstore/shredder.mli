(** Shredding a labeled XML document into relations.

    Two storage layouts from the paper's §1 survey:

    - the {e edge table} (Florescu–Kossmann): one row per node carrying its
      parent id, so every navigation step is a self-join;
    - the {e label table}: one row per node carrying its L-Tree
      [(start, end, level)] label, so ancestor-descendant navigation is a
      single label-predicate join.

    Both are built over the same {!Pager} so their page-read counts are
    directly comparable (experiment E8). *)

open Ltree_xml

type edge_row = {
  e_id : int; (** Dom node id *)
  e_parent : int; (** parent's Dom id, -1 for the root *)
  e_tag : string; (** element name, or ["#text"] for text nodes *)
  e_pos : int; (** position among siblings *)
}

type label_row = {
  l_id : int;
  l_tag : string;
  l_start : int;
  l_end : int;
  l_level : int;
  l_dead : bool; (** tombstoned by {!Label_sync} after a node deletion *)
}

type edge_store = {
  edge_table : edge_row Rel_table.t;
  edge_by_tag : (string, int list) Hashtbl.t; (* tag -> row ids *)
  edge_by_parent : (int, int list) Hashtbl.t; (* node id -> child row ids *)
}

type label_store = {
  label_table : label_row Rel_table.t;
  label_by_tag : (string, int list) Hashtbl.t; (* tag -> row ids *)
  label_by_node : (int, int) Hashtbl.t; (* Dom id -> row id *)
  label_index : Label_index.t;
      (* per-tag sorted (start, end, row id) arrays — the secondary
         index behind the structural-join plans; built lazily per tag
         and incrementally repaired when {!Label_sync.flush} reports
         which rows moved *)
  mutable label_epoch : int;
      (* store-level incarnation stamp, bumped by {!Label_sync.resync}
         after a crash recovery replaces the backing document; sync
         handles created against an older epoch refuse to write, so a
         restarted store can never be fed through a stale handle *)
}

(** [tag_of n] is the relational tag of a node: its element name,
    ["#text"] for text, [None] for comments/PIs (not stored). *)
val tag_of : Dom.node -> string option

(** [shred_edge pager ?rows_per_page doc] builds the edge relation
    (documents only need the DOM, not the labels). *)
val shred_edge :
  Pager.t -> ?rows_per_page:int -> Dom.document -> edge_store

(** [shred_label pager ?rows_per_page ldoc] builds the label relation from
    a labeled document. *)
val shred_label :
  Pager.t -> ?rows_per_page:int -> Ltree_doc.Labeled_doc.t -> label_store
