(** The two relational plans for the motivating query shape [a//b]
    (paper §1: "to answer descendant-axis '//' ... many self-joins are
    needed" vs. "exactly one self-join with label comparisons").

    Both return the Dom ids of matching [b] nodes, sorted; both charge
    row fetches to the shared pager, so [page_reads] are comparable. *)

(** [edge_descendants store ~anc ~desc] evaluates [anc//desc] by iterated
    parent-child self-joins (BFS from the [anc] rows through the
    parent-id index, fetching every intermediate row). *)
val edge_descendants :
  Shredder.edge_store -> anc:string -> desc:string -> int list

(** [label_descendants store ~anc ~desc] evaluates [anc//desc] with one
    structural join over the incremental per-tag label index
    ({!Label_index}): both inputs come back as sorted [(start, end,
    row id)] arrays — rebuilt on first access, merge-repaired after
    updates — and are joined by the array-cursor stack join
    (interval-containment comparisons counted on the pager's
    counters). *)
val label_descendants :
  Pager.t -> Shredder.label_store -> anc:string -> desc:string -> int list

(** [label_descendants_hot pager store ~anc ~desc] is the same plan
    stripped to its zero-allocation spine: clean-entry lookup (falling
    back to repair only when the index is dirty), the specialized
    column join writing matched Dom ids into the index's preallocated
    workspace, and an in-place sort+dedup.  In steady state (clean
    index, warm workspace and buffer pool) a call allocates nothing on
    the minor heap — the claim [make analyze] (R9) checks statically
    and [exp_query] asserts dynamically.  The returned column is
    {e borrowed}: it is the index workspace's result buffer, valid only
    until the next query on the same store. *)
val label_descendants_hot :
  Pager.t -> Shredder.label_store -> anc:string -> desc:string ->
  Ltree_core.Column.t

(** [label_descendants_baseline pager store ~anc ~desc] is the
    pre-index control plan: fetch and re-sort both tags' rows on every
    call (sort comparisons charged), then run the list-based stack
    join.  Kept for the old-vs-new comparison in [exp_query] and the
    agreement tests. *)
val label_descendants_baseline :
  Pager.t -> Shredder.label_store -> anc:string -> desc:string -> int list

(** [label_descendants_inl pager store ~anc ~desc] evaluates the same
    query with the {e index-nested-loop} plan: for each [anc] row, probe
    the [desc] index entry by binary search and fetch only the rows
    whose start falls inside the ancestor's interval (XML intervals
    nest, so start containment implies full containment).  Cheaper than
    the merge when the anchors are few and selective, more expensive
    when they blanket the document — the crossover is experiment E8d.
    The probed entry is the same incremental index the merge plan uses:
    built lazily, repaired (not dropped) after {!Label_sync.flush}. *)
val label_descendants_inl :
  Pager.t -> Shredder.label_store -> anc:string -> desc:string -> int list

(** [edge_children store ~parent ~child] and
    [label_children pager store ~parent ~child] evaluate the single-step
    [parent/child] under both layouts. *)
val edge_children :
  Shredder.edge_store -> parent:string -> child:string -> int list

val label_children :
  Pager.t -> Shredder.label_store -> parent:string -> child:string ->
  int list

(** [edge_path store tags] and [label_path pager store tags] evaluate a
    multi-step descendant path [t1//t2//…//tk] (k >= 1), returning the
    ids of the final step's matches.  The edge plan re-runs its BFS from
    every intermediate result; the label plan pipelines stack joins, one
    per step — the paper's "exactly one self-join per location step". *)
val edge_path : Shredder.edge_store -> string list -> int list

val label_path :
  Pager.t -> Shredder.label_store -> string list -> int list

(** [index_stats store] is the store's {!Label_index.stats} — repairs
    performed, full rebuilds, rows merged. *)
val index_stats : Shredder.label_store -> Label_index.stats

(** [tag_entry pager store tag] is the tag's live index entry: sorted
    [(start, end, rid)] arrays, rebuilt or merge-repaired on access.
    Exposed so read-only execution layers (snapshots in [lib/exec]) can
    freeze a consistent copy; treat the arrays as immutable. *)
val tag_entry :
  Pager.t -> Shredder.label_store -> string -> Label_index.entry

(** [array_join counters a d ~emit] is the array-cursor stack join over
    two sorted entries: [emit apos dpos] fires for every containment
    pair, descendant positions ascending with duplicates adjacent.
    Exposed for executors that join frozen snapshot slices. *)
val array_join :
  Ltree_metrics.Counters.t ->
  Label_index.entry ->
  Label_index.entry ->
  emit:(int -> int -> unit) ->
  unit
