open Ltree_xml
module Labeled_doc = Ltree_doc.Labeled_doc
open Shredder

(* Monomorphic comparison prelude (lint rule R2). *)
let ( <> ) : int -> int -> bool = Stdlib.( <> )

type t = {
  store : label_store;
  ldoc : Labeled_doc.t;
}

type stats = {
  rows_updated : int;
  rows_inserted : int;
  rows_tombstoned : int;
}

(* The pager argument is kept for interface stability: the store's own
   tables carry their pager, so the sync layer never touches it. *)
let create (_ : Pager.t) store ldoc = { store; ldoc }

let row_of_node ldoc node =
  match Shredder.tag_of node with
  | None -> None
  | Some tag ->
    let l = Labeled_doc.label ldoc node in
    Some
      { l_id = Dom.id node; l_tag = tag;
        l_start = l.Labeled_doc.start_pos;
        l_end = l.Labeled_doc.end_pos;
        l_level = l.Labeled_doc.level;
        l_dead = false }

let row_changed (a : label_row) (b : label_row) =
  a.l_start <> b.l_start || a.l_end <> b.l_end || a.l_level <> b.l_level
  || a.l_id <> b.l_id
  || (not (String.equal a.l_tag b.l_tag))
  || not (Bool.equal a.l_dead b.l_dead)

let flush t =
  let updated = ref 0 and inserted = ref 0 and tombstoned = ref 0 in
  (* Each write is reported to the secondary index's dirty log, so the
     next query repairs exactly the touched tags instead of rebuilding
     the world. *)
  let dirty tag rid = Label_index.note_change t.store.label_index ~tag ~rid in
  List.iter
    (fun (dom_id, node) ->
      match (Hashtbl.find_opt t.store.label_by_node dom_id, node) with
      | Some rid, Some node -> (
          match row_of_node t.ldoc node with
          | Some row ->
            if row_changed (Rel_table.get t.store.label_table rid) row then begin
              Rel_table.set t.store.label_table rid row;
              dirty row.l_tag rid;
              incr updated
            end
          | None -> ())
      | Some rid, None ->
        let old = Rel_table.get t.store.label_table rid in
        if not old.l_dead then begin
          Rel_table.set t.store.label_table rid { old with l_dead = true };
          Hashtbl.remove t.store.label_by_node dom_id;
          dirty old.l_tag rid;
          incr tombstoned
        end
      | None, Some node -> (
          match row_of_node t.ldoc node with
          | Some row ->
            let rid = Rel_table.append t.store.label_table row in
            Hashtbl.replace t.store.label_by_node dom_id rid;
            Hashtbl.replace t.store.label_by_tag row.l_tag
              (rid
              :: Option.value ~default:[]
                   (Hashtbl.find_opt t.store.label_by_tag row.l_tag));
            dirty row.l_tag rid;
            incr inserted
          | None -> ())
      | None, None -> () (* created and deleted between flushes *))
    (Labeled_doc.drain_dirty t.ldoc);
  { rows_updated = !updated;
    rows_inserted = !inserted;
    rows_tombstoned = !tombstoned }

let check t =
  (* Every labeled node must have an exact live row; every live row must
     describe a labeled node. *)
  (match (Labeled_doc.document t.ldoc).root with
   | None -> ()
   | Some root ->
     Dom.iter_preorder root (fun node ->
         match Shredder.tag_of node with
         | None -> ()
         | Some _ -> (
             match Hashtbl.find_opt t.store.label_by_node (Dom.id node) with
             | None -> failwith "Label_sync: labeled node without a row"
             | Some rid ->
               let row = Rel_table.get t.store.label_table rid in
               let l = Labeled_doc.label t.ldoc node in
               if
                 row.l_dead
                 || row.l_start <> l.Labeled_doc.start_pos
                 || row.l_end <> l.Labeled_doc.end_pos
                 || row.l_level <> l.Labeled_doc.level
               then failwith "Label_sync: stale row after flush")));
  Rel_table.iter t.store.label_table (fun _ row ->
      if not row.l_dead then
        match Labeled_doc.node_by_id t.ldoc row.l_id with
        | Some _ -> ()
        | None -> failwith "Label_sync: live row for a vanished node")
