open Ltree_xml
module Labeled_doc = Ltree_doc.Labeled_doc
module Span = Ltree_obs.Span
open Shredder

(* Monomorphic comparison prelude (lint rule R2). *)
let ( <> ) : int -> int -> bool = Stdlib.( <> )

(* Rows written per flush/resync: the effective write batch size the
   relational store sees from the document layer. *)
let flush_rows =
  Ltree_obs.Registry.histogram ~name:"relstore_flush_rows"
    ~help:"Label rows updated, inserted or tombstoned per sync pass"
    ~bounds:(Ltree_obs.Histogram.log2_bounds ~start:1. ~count:16)
    ()

type t = {
  store : label_store;
  ldoc : Labeled_doc.t;
  epoch : int;
      (* the store incarnation this handle was created against; see
         [ensure_fresh] *)
}

type stats = {
  rows_updated : int;
  rows_inserted : int;
  rows_tombstoned : int;
}

(* The pager argument is kept for interface stability: the store's own
   tables carry their pager, so the sync layer never touches it. *)
let create (_ : Pager.t) store ldoc =
  { store; ldoc; epoch = store.label_epoch }

let epoch t = t.epoch

(* A handle bound to a document that a recovery has since replaced must
   not touch the store: its dirty-set bookkeeping describes nodes that
   no longer exist.  [resync] is the only way forward. *)
let ensure_fresh t what =
  if t.epoch <> t.store.label_epoch then
    failwith
      (Printf.sprintf
         "Label_sync.%s: stale handle (store epoch %d, handle epoch %d) \
          — the store was resynced after a recovery; use the handle \
          returned by Label_sync.resync"
         what t.store.label_epoch t.epoch)

let row_of_node ldoc node =
  match Shredder.tag_of node with
  | None -> None
  | Some tag ->
    let l = Labeled_doc.label ldoc node in
    Some
      { l_id = Dom.id node; l_tag = tag;
        l_start = l.Labeled_doc.start_pos;
        l_end = l.Labeled_doc.end_pos;
        l_level = l.Labeled_doc.level;
        l_dead = false }

let row_changed (a : label_row) (b : label_row) =
  a.l_start <> b.l_start || a.l_end <> b.l_end || a.l_level <> b.l_level
  || a.l_id <> b.l_id
  || (not (String.equal a.l_tag b.l_tag))
  || not (Bool.equal a.l_dead b.l_dead)

let flush_raw t =
  ensure_fresh t "flush";
  let updated = ref 0 and inserted = ref 0 and tombstoned = ref 0 in
  (* Each write is reported to the secondary index's dirty log, so the
     next query repairs exactly the touched tags instead of rebuilding
     the world. *)
  let dirty tag rid = Label_index.note_change t.store.label_index ~tag ~rid in
  List.iter
    (fun (dom_id, node) ->
      match (Hashtbl.find_opt t.store.label_by_node dom_id, node) with
      | Some rid, Some node -> (
          match row_of_node t.ldoc node with
          | Some row ->
            if row_changed (Rel_table.get t.store.label_table rid) row then begin
              Rel_table.set t.store.label_table rid row;
              dirty row.l_tag rid;
              incr updated
            end
          | None -> ())
      | Some rid, None ->
        let old = Rel_table.get t.store.label_table rid in
        if not old.l_dead then begin
          Rel_table.set t.store.label_table rid { old with l_dead = true };
          Hashtbl.remove t.store.label_by_node dom_id;
          dirty old.l_tag rid;
          incr tombstoned
        end
      | None, Some node -> (
          match row_of_node t.ldoc node with
          | Some row ->
            let rid = Rel_table.append t.store.label_table row in
            Hashtbl.replace t.store.label_by_node dom_id rid;
            Hashtbl.replace t.store.label_by_tag row.l_tag
              (rid
              :: Option.value ~default:[]
                   (Hashtbl.find_opt t.store.label_by_tag row.l_tag));
            dirty row.l_tag rid;
            incr inserted
          | None -> ())
      | None, None -> () (* created and deleted between flushes *))
    (Labeled_doc.drain_dirty t.ldoc);
  { rows_updated = !updated;
    rows_inserted = !inserted;
    rows_tombstoned = !tombstoned }

let observe_rows st =
  Ltree_obs.Histogram.observe_int flush_rows
    (st.rows_updated + st.rows_inserted + st.rows_tombstoned)

let flush t =
  Span.with_ ~name:"relstore.flush"
    ~counters:(Labeled_doc.counters t.ldoc) (fun () ->
      let st = flush_raw t in
      observe_rows st;
      st)

(* Rebind a store to the document that recovery reconstructed.  Node
   identity (Dom ids) did not survive the restart, but labels did — the
   §4.2 determinism this whole layer is built on — so rows are matched
   to recovered nodes by their durable start label.  The reconciliation
   is dirty-all: every row is recomputed, rows whose label claims no
   recovered node are tombstoned, recovered nodes without a row get one.
   The per-tag index is dropped wholesale ({!Label_index.invalidate_all})
   and the store epoch is bumped so pre-recovery handles go stale. *)
let resync_raw old ldoc =
  let store = old.store in
  store.label_epoch <- store.label_epoch + 1;
  Label_index.invalidate_all store.label_index;
  (* Recovery replays populate the document's dirty set; this handle
     rewrites every row from scratch, so start from a clean slate. *)
  ignore (Labeled_doc.drain_dirty ldoc);
  let updated = ref 0 and inserted = ref 0 and tombstoned = ref 0 in
  (* Live rows, addressable by their durable start label. *)
  let by_start = Hashtbl.create 256 in
  Rel_table.iter store.label_table (fun rid row ->
      if not row.l_dead then Hashtbl.replace by_start row.l_start rid);
  Hashtbl.reset store.label_by_node;
  (match (Labeled_doc.document ldoc).root with
   | None -> ()
   | Some root ->
     Dom.iter_preorder root (fun node ->
         match Shredder.tag_of node with
         | None -> ()
         | Some tag -> (
             let l = Labeled_doc.label ldoc node in
             let fresh =
               { l_id = Dom.id node; l_tag = tag;
                 l_start = l.Labeled_doc.start_pos;
                 l_end = l.Labeled_doc.end_pos;
                 l_level = l.Labeled_doc.level;
                 l_dead = false }
             in
             match Hashtbl.find_opt by_start fresh.l_start with
             | Some rid
               when String.equal
                      (Rel_table.get store.label_table rid).l_tag tag ->
               Hashtbl.remove by_start fresh.l_start;
               if row_changed (Rel_table.get store.label_table rid) fresh
               then begin
                 Rel_table.set store.label_table rid fresh;
                 incr updated
               end;
               Hashtbl.replace store.label_by_node fresh.l_id rid
             | Some _ | None ->
               (* No row carries this label (or a row does under a
                  different tag — divergent history); append a fresh
                  one.  The mismatched row, if any, stays in [by_start]
                  and is tombstoned below. *)
               let rid = Rel_table.append store.label_table fresh in
               Hashtbl.replace store.label_by_node fresh.l_id rid;
               Hashtbl.replace store.label_by_tag tag
                 (rid
                 :: Option.value ~default:[]
                      (Hashtbl.find_opt store.label_by_tag tag));
               incr inserted)));
  (* Whatever is left claimed no recovered node: the crash rolled those
     nodes back (or their labels moved beyond recognition). *)
  Hashtbl.iter
    (fun _ rid ->
      let row = Rel_table.get store.label_table rid in
      Rel_table.set store.label_table rid { row with l_dead = true };
      incr tombstoned)
    by_start;
  ( { store; ldoc; epoch = store.label_epoch },
    { rows_updated = !updated;
      rows_inserted = !inserted;
      rows_tombstoned = !tombstoned } )

let resync old ldoc =
  Span.with_ ~name:"relstore.resync"
    ~counters:(Labeled_doc.counters ldoc) (fun () ->
      let handle, st = resync_raw old ldoc in
      observe_rows st;
      (handle, st))

let check t =
  ensure_fresh t "check";
  (* Every labeled node must have an exact live row; every live row must
     describe a labeled node. *)
  (match (Labeled_doc.document t.ldoc).root with
   | None -> ()
   | Some root ->
     Dom.iter_preorder root (fun node ->
         match Shredder.tag_of node with
         | None -> ()
         | Some _ -> (
             match Hashtbl.find_opt t.store.label_by_node (Dom.id node) with
             | None -> failwith "Label_sync: labeled node without a row"
             | Some rid ->
               let row = Rel_table.get t.store.label_table rid in
               let l = Labeled_doc.label t.ldoc node in
               if
                 row.l_dead
                 || row.l_start <> l.Labeled_doc.start_pos
                 || row.l_end <> l.Labeled_doc.end_pos
                 || row.l_level <> l.Labeled_doc.level
               then failwith "Label_sync: stale row after flush")));
  Rel_table.iter t.store.label_table (fun _ row ->
      if not row.l_dead then
        match Labeled_doc.node_by_id t.ldoc row.l_id with
        | Some _ -> ()
        | None -> failwith "Label_sync: live row for a vanished node")
