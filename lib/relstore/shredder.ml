open Ltree_xml
module Labeled_doc = Ltree_doc.Labeled_doc

(* Monomorphic comparison prelude (lint rule R2). *)
let ( >= ) : int -> int -> bool = Stdlib.( >= )

type edge_row = { e_id : int; e_parent : int; e_tag : string; e_pos : int }

type label_row = {
  l_id : int;
  l_tag : string;
  l_start : int;
  l_end : int;
  l_level : int;
  l_dead : bool;
}

type edge_store = {
  edge_table : edge_row Rel_table.t;
  edge_by_tag : (string, int list) Hashtbl.t;
  edge_by_parent : (int, int list) Hashtbl.t;
}

type label_store = {
  label_table : label_row Rel_table.t;
  label_by_tag : (string, int list) Hashtbl.t;
  label_by_node : (int, int) Hashtbl.t;
  label_index : Label_index.t;
  mutable label_epoch : int;
}

let tag_of node =
  match Dom.kind node with
  | Dom.Element name -> Some name
  | Dom.Text _ -> Some "#text"
  | Dom.Comment _ | Dom.Pi _ -> None

let push tbl key v =
  Hashtbl.replace tbl key (v :: Option.value ~default:[] (Hashtbl.find_opt tbl key))

let rev_all tbl = Hashtbl.iter (fun k v -> Hashtbl.replace tbl k (List.rev v)) tbl

let shred_edge pager ?(rows_per_page = 32) (doc : Dom.document) =
  let edge_table = Rel_table.create pager ~name:"edge" ~rows_per_page in
  let edge_by_tag = Hashtbl.create 64 in
  let edge_by_parent = Hashtbl.create 256 in
  (match doc.root with
   | None -> ()
   | Some root ->
     let rec go node parent_id =
       match tag_of node with
       | None -> ()
       | Some tag ->
         let pos =
           match Dom.parent node with
           | None -> 0
           | Some _ -> Dom.index_in_parent node
         in
         let row =
           { e_id = Dom.id node; e_parent = parent_id; e_tag = tag;
             e_pos = pos }
         in
         let rid = Rel_table.append edge_table row in
         push edge_by_tag tag rid;
         if parent_id >= 0 then push edge_by_parent parent_id rid;
         List.iter (fun c -> go c (Dom.id node)) (Dom.children node)
     in
     go root (-1));
  rev_all edge_by_tag;
  rev_all edge_by_parent;
  { edge_table; edge_by_tag; edge_by_parent }

let shred_label pager ?(rows_per_page = 32) ldoc =
  let label_table = Rel_table.create pager ~name:"label" ~rows_per_page in
  let label_by_tag = Hashtbl.create 64 in
  let label_by_node = Hashtbl.create 256 in
  (match (Labeled_doc.document ldoc).root with
   | None -> ()
   | Some root ->
     (* Preorder = ascending start label, so per-tag id lists arrive
        sorted by start. *)
     Dom.iter_preorder root (fun node ->
         match tag_of node with
         | None -> ()
         | Some tag ->
           let l = Labeled_doc.label ldoc node in
           let row =
             { l_id = Dom.id node; l_tag = tag;
               l_start = l.Labeled_doc.start_pos;
               l_end = l.Labeled_doc.end_pos;
               l_level = l.Labeled_doc.level;
               l_dead = false }
           in
           let rid = Rel_table.append label_table row in
           Hashtbl.replace label_by_node (Dom.id node) rid;
           push label_by_tag tag rid));
  rev_all label_by_tag;
  { label_table; label_by_tag; label_by_node;
    label_index = Label_index.create (); label_epoch = 0 }
