module Span = Ltree_obs.Span
module Column = Ltree_core.Column

(* Incremental repairs are the index's whole point: this histogram shows
   how small the merged batches stay relative to full rebuilds. *)
let merged_rows_hist =
  Ltree_obs.Registry.histogram ~name:"relstore_index_merged_rows"
    ~help:"Rows merged into a per-tag label index per incremental repair"
    ~bounds:(Ltree_obs.Histogram.linear_bounds ~start:0. ~step:8. ~count:16)
    ()

(* Monomorphic comparison prelude (lint rule R2). *)
let ( = ) : int -> int -> bool = Stdlib.( = )
let ( <> ) : int -> int -> bool = Stdlib.( <> )
let ( <= ) : int -> int -> bool = Stdlib.( <= )
let ( > ) : int -> int -> bool = Stdlib.( > )
let max : int -> int -> int = Stdlib.max

type entry = {
  starts : Column.t;
  ends : Column.t;
  rids : Column.t;
  mutable len : int;
  mutable stamp : int;
}

type jstate = {
  mutable js_ai : int;
  mutable js_di : int;
  mutable js_done : bool;
}

type workspace = {
  w_stack : Column.t;
  w_out : Column.t;
  w_mark : Column.t;
  w_js : jstate;
}

type stats = { repairs : int; full_rebuilds : int; merged_rows : int }

type t = {
  tags : (string, entry) Hashtbl.t;
  pending : (string, (int, unit) Hashtbl.t) Hashtbl.t;
  mutable generation : int;
  mutable repairs : int;
  mutable full_rebuilds : int;
  mutable merged_rows : int;
  (* Reused repair scratch: the changed batch of one tag.  Grown once,
     never dropped — repairs allocate nothing in steady state. *)
  ins_s : Column.t;
  ins_e : Column.t;
  ins_r : Column.t;
  (* Touched-rid bitset for the survivor pass (one bit test per row
     instead of one hash probe). *)
  rmark : Column.t;
  ws : workspace;
}

let create () =
  { tags = Hashtbl.create 64;
    pending = Hashtbl.create 16;
    generation = 0;
    repairs = 0;
    full_rebuilds = 0;
    merged_rows = 0;
    ins_s = Column.create ~capacity:64 ();
    ins_e = Column.create ~capacity:64 ();
    ins_r = Column.create ~capacity:64 ();
    rmark = Column.create ~capacity:64 ();
    ws =
      { w_stack = Column.create ~capacity:64 ();
        w_out = Column.create ~capacity:256 ();
        w_mark = Column.create ~capacity:256 ();
        w_js = { js_ai = 0; js_di = 0; js_done = false } } }

let generation t = t.generation
let workspace t = t.ws

let stats t =
  { repairs = t.repairs;
    full_rebuilds = t.full_rebuilds;
    merged_rows = t.merged_rows }

let note_change t ~tag ~rid =
  t.generation <- t.generation + 1;
  (* Tags never materialized need no repair log: their first access does
     a full build from the row ids anyway. *)
  if Hashtbl.mem t.tags tag then begin
    let set =
      match Hashtbl.find_opt t.pending tag with
      | Some set -> set
      | None ->
        let set = Hashtbl.create 8 in
        Hashtbl.replace t.pending tag set;
        set
    in
    Hashtbl.replace set rid ()
  end

let invalidate_all t =
  t.generation <- t.generation + 1;
  Hashtbl.reset t.tags;
  Hashtbl.reset t.pending

exception Dirty

(* The allocation-free lookup the zero-alloc query spine rides: a clean
   materialized entry or the [Dirty] escape to the repairing path.
   [Hashtbl.find] (not [find_opt]) so the hit path builds no option. *)
let[@ltree.hot] clean t tag =
  match Hashtbl.find t.tags tag with
  | exception Not_found -> raise Dirty
  | e -> if Hashtbl.mem t.pending tag then raise Dirty else e

(* Build a tag's entry from scratch: fetch every row id, drop the dead,
   sort by start.  Row ids arrive in insertion order, which is document
   preorder for a bulk shred, so the already-sorted check in
   {!Column.sort3} keeps bulk builds linear. *)
let rebuild t counters ~rids_of_tag ~fetch tag =
  Span.event ~attrs:[ ("tag", tag) ] "relstore.index_rebuild";
  let ids = rids_of_tag tag in
  let cap = max 16 (List.length ids) in
  let entry =
    { starts = Column.create ~capacity:cap ();
      ends = Column.create ~capacity:cap ();
      rids = Column.create ~capacity:cap ();
      len = 0;
      stamp = t.generation }
  in
  List.iter
    (fun rid ->
      let s, e, dead = fetch rid in
      if not dead then begin
        Column.push entry.starts s;
        Column.push entry.ends e;
        Column.push entry.rids rid
      end)
    ids;
  let live = Column.length entry.starts in
  Column.sort3 counters entry.starts entry.ends entry.rids live;
  entry.len <- live;
  Hashtbl.replace t.tags tag entry;
  Hashtbl.remove t.pending tag;
  t.full_rebuilds <- t.full_rebuilds + 1;
  entry

let[@inline] touched_bit mark maxrid rid =
  rid <= maxrid
  && Column.get mark (rid lsr 5) land (1 lsl (rid land 31)) <> 0

(* Repair one tag in place: drop every touched (or tombstoned) row from
   the sorted survivors in one compaction pass, re-fetch the touched
   rows into the reused batch scratch, sort that small batch, and merge
   backwards through the entry's own (reserved) columns — never
   re-sorting the untouched bulk and never allocating fresh arrays. *)
let repair t counters ~fetch tag entry touched =
  let n = entry.len in
  let s = entry.starts and e = entry.ends and r = entry.rids in
  (* Scatter the touched rids into the reused bitset; the survivor scan
     below then costs one bit test per row. *)
  let maxrid = Hashtbl.fold (fun rid () m -> max rid m) touched (-1) in
  let words = (maxrid + 32) lsr 5 in
  Column.reserve t.rmark words;
  Column.set_len t.rmark 0;
  for i = 0 to words - 1 do
    Column.set t.rmark i 0
  done;
  Hashtbl.iter
    (fun rid () ->
      let w = rid lsr 5 in
      Column.set t.rmark w (Column.get t.rmark w lor (1 lsl (rid land 31))))
    touched;
  (* Survivors keep their sorted order; dead rows can only be pending
     (tombstoning goes through the sync layer, which logs the rid), so
     this pass is also the lazy tombstone compaction. *)
  let ns = ref 0 in
  for i = 0 to n - 1 do
    let rid = Column.get r i in
    if not (touched_bit t.rmark maxrid rid) then begin
      Column.set s !ns (Column.get s i);
      Column.set e !ns (Column.get e i);
      Column.set r !ns rid;
      incr ns
    end
  done;
  Column.clear t.ins_s;
  Column.clear t.ins_e;
  Column.clear t.ins_r;
  Hashtbl.iter
    (fun rid () ->
      let s', e', dead = fetch rid in
      if not dead then begin
        Column.push t.ins_s s';
        Column.push t.ins_e e';
        Column.push t.ins_r rid
      end)
    touched;
  let ni = Column.length t.ins_s in
  Column.sort3 counters t.ins_s t.ins_e t.ins_r ni;
  let total = !ns + ni in
  Column.reserve s total;
  Column.reserve e total;
  Column.reserve r total;
  (* Backward galloping merge, in place: binary-search each insertion's
     splice point from the top (charging log comparisons per probe) and
     shift the surviving run right in one descending sweep, largest
     keys first, so no survivor is read after being overwritten. *)
  let o = ref (total - 1) in
  let hi = ref !ns in
  for j = ni - 1 downto 0 do
    let key = Column.get t.ins_s j in
    let split = Column.upper_bound_sub counters s ~hi:!hi key in
    for k = !hi - 1 downto split do
      let dst = !o - (!hi - 1 - k) in
      Column.set s dst (Column.get s k);
      Column.set e dst (Column.get e k);
      Column.set r dst (Column.get r k)
    done;
    o := !o - (!hi - split);
    Column.set s !o key;
    Column.set e !o (Column.get t.ins_e j);
    Column.set r !o (Column.get t.ins_r j);
    decr o;
    hi := split
  done;
  entry.len <- total;
  Column.set_len s total;
  Column.set_len e total;
  Column.set_len r total;
  entry.stamp <- t.generation;
  Hashtbl.remove t.pending tag;
  t.repairs <- t.repairs + 1;
  t.merged_rows <- t.merged_rows + ni;
  Span.event ~attrs:[ ("tag", tag) ] "relstore.index_repair";
  Ltree_obs.Histogram.observe_int merged_rows_hist ni;
  entry

let entry t counters ~rids_of_tag ~fetch tag =
  match Hashtbl.find_opt t.tags tag with
  | None -> rebuild t counters ~rids_of_tag ~fetch tag
  | Some entry -> (
      match Hashtbl.find_opt t.pending tag with
      | None -> entry
      | Some touched when Hashtbl.length touched = 0 ->
        Hashtbl.remove t.pending tag;
        entry
      | Some touched -> repair t counters ~fetch tag entry touched)

(* First position in [e] with start > key (binary search; one comparison
   charged per probe). *)
let[@ltree.hot] upper_bound counters e key =
  Column.upper_bound_sub counters e.starts ~hi:e.len key

let check t ~fetch =
  Hashtbl.iter
    (fun tag entry ->
      if not (Hashtbl.mem t.pending tag) then begin
        if
          Stdlib.not (Column.length entry.starts = entry.len)
          || Stdlib.not (Column.length entry.ends = entry.len)
          || Stdlib.not (Column.length entry.rids = entry.len)
        then failwith "Label_index: column lengths disagree with entry";
        for i = 0 to entry.len - 1 do
          if
            i > 0
            && Column.get_checked entry.starts i
               <= Column.get_checked entry.starts (i - 1)
          then failwith "Label_index: starts not strictly increasing";
          let s, e, dead = fetch (Column.get_checked entry.rids i) in
          if dead then failwith "Label_index: clean entry holds a dead row";
          if
            not (s = Column.get_checked entry.starts i)
            || not (e = Column.get_checked entry.ends i)
          then failwith "Label_index: clean entry disagrees with its row"
        done
      end)
    t.tags
