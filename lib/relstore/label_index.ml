module Counters = Ltree_metrics.Counters
module Span = Ltree_obs.Span

(* Incremental repairs are the index's whole point: this histogram shows
   how small the merged batches stay relative to full rebuilds. *)
let merged_rows_hist =
  Ltree_obs.Registry.histogram ~name:"relstore_index_merged_rows"
    ~help:"Rows merged into a per-tag label index per incremental repair"
    ~bounds:(Ltree_obs.Histogram.linear_bounds ~start:0. ~step:8. ~count:16)
    ()

(* Monomorphic comparison prelude (lint rule R2). *)
let ( = ) : int -> int -> bool = Stdlib.( = )
let ( < ) : int -> int -> bool = Stdlib.( < )
let ( <= ) : int -> int -> bool = Stdlib.( <= )
let ( > ) : int -> int -> bool = Stdlib.( > )
let max : int -> int -> int = Stdlib.max

type entry = {
  mutable starts : int array;
  mutable ends : int array;
  mutable rids : int array;
  mutable len : int;
}

type stats = { repairs : int; full_rebuilds : int; merged_rows : int }

type t = {
  tags : (string, entry) Hashtbl.t;
  pending : (string, (int, unit) Hashtbl.t) Hashtbl.t;
  mutable generation : int;
  mutable repairs : int;
  mutable full_rebuilds : int;
  mutable merged_rows : int;
}

let create () =
  { tags = Hashtbl.create 64;
    pending = Hashtbl.create 16;
    generation = 0;
    repairs = 0;
    full_rebuilds = 0;
    merged_rows = 0 }

let generation t = t.generation

let stats t =
  { repairs = t.repairs;
    full_rebuilds = t.full_rebuilds;
    merged_rows = t.merged_rows }

let note_change t ~tag ~rid =
  t.generation <- t.generation + 1;
  (* Tags never materialized need no repair log: their first access does
     a full build from the row ids anyway. *)
  if Hashtbl.mem t.tags tag then begin
    let set =
      match Hashtbl.find_opt t.pending tag with
      | Some set -> set
      | None ->
        let set = Hashtbl.create 8 in
        Hashtbl.replace t.pending tag set;
        set
    in
    Hashtbl.replace set rid ()
  end

let invalidate_all t =
  t.generation <- t.generation + 1;
  Hashtbl.reset t.tags;
  Hashtbl.reset t.pending

(* Sort the (start, end, rid) triples [0, n) of three parallel arrays in
   place by start, charging one comparison per comparator call.  The
   batches sorted here are the freshly changed rows of one tag — small
   next to the surviving array, which is what makes repair cheaper than
   the sort-on-fetch baseline. *)
let sort3 counters starts ends rids n =
  let idx = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      Counters.add_comparison counters 1;
      Int.compare starts.(a) starts.(b))
    idx;
  let pick src = Array.init n (fun i -> src.(idx.(i))) in
  let s = pick starts and e = pick ends and r = pick rids in
  Array.blit s 0 starts 0 n;
  Array.blit e 0 ends 0 n;
  Array.blit r 0 rids 0 n

(* Build a tag's entry from scratch: fetch every row id, drop the dead,
   sort by start. *)
let rebuild t counters ~rids_of_tag ~fetch tag =
  Span.event ~attrs:[ ("tag", tag) ] "relstore.index_rebuild";
  let ids = rids_of_tag tag in
  let n = List.length ids in
  let starts = Array.make n 0
  and ends = Array.make n 0
  and rids = Array.make n 0 in
  let len = ref 0 in
  List.iter
    (fun rid ->
      let s, e, dead = fetch rid in
      if not dead then begin
        starts.(!len) <- s;
        ends.(!len) <- e;
        rids.(!len) <- rid;
        incr len
      end)
    ids;
  sort3 counters starts ends rids !len;
  let entry = { starts; ends; rids; len = !len } in
  Hashtbl.replace t.tags tag entry;
  Hashtbl.remove t.pending tag;
  t.full_rebuilds <- t.full_rebuilds + 1;
  entry

(* Repair one tag: drop every touched (or tombstoned) row from the
   sorted survivors in one pass, re-fetch the touched rows, sort that
   small batch, and merge — never re-sorting the untouched bulk. *)
let repair t counters ~fetch tag entry touched =
  let n = entry.len in
  (* Survivors keep their sorted order; dead rows can only be pending
     (tombstoning goes through the sync layer, which logs the rid), so
     this pass is also the lazy tombstone compaction. *)
  let surv_s = Array.make n 0
  and surv_e = Array.make n 0
  and surv_r = Array.make n 0 in
  let ns = ref 0 in
  for i = 0 to n - 1 do
    if not (Hashtbl.mem touched entry.rids.(i)) then begin
      surv_s.(!ns) <- entry.starts.(i);
      surv_e.(!ns) <- entry.ends.(i);
      surv_r.(!ns) <- entry.rids.(i);
      incr ns
    end
  done;
  let k = Hashtbl.length touched in
  let ins_s = Array.make (max 1 k) 0
  and ins_e = Array.make (max 1 k) 0
  and ins_r = Array.make (max 1 k) 0 in
  let ni = ref 0 in
  Hashtbl.iter
    (fun rid () ->
      let s, e, dead = fetch rid in
      if not dead then begin
        ins_s.(!ni) <- s;
        ins_e.(!ni) <- e;
        ins_r.(!ni) <- rid;
        incr ni
      end)
    touched;
  sort3 counters ins_s ins_e ins_r !ni;
  let total = !ns + !ni in
  let out_s = Array.make (max 1 total) 0
  and out_e = Array.make (max 1 total) 0
  and out_r = Array.make (max 1 total) 0 in
  (* Galloping merge: the changed batch is tiny next to the survivors,
     so binary-search each insertion's splice point (charging log
     comparisons per probe) and blit the survivor runs wholesale, rather
     than paying one comparison per surviving row. *)
  let[@ltree.hot] splice_point lo key =
    let l = ref lo and h = ref !ns in
    while !l < !h do
      let mid = (!l + !h) / 2 in
      Counters.add_comparison counters 1;
      if surv_s.(mid) <= key then l := mid + 1 else h := mid
    done;
    !l
  in
  let i = ref 0 and o = ref 0 in
  let[@ltree.hot] blit_survivors upto =
    let run = upto - !i in
    if run > 0 then begin
      Array.blit surv_s !i out_s !o run;
      Array.blit surv_e !i out_e !o run;
      Array.blit surv_r !i out_r !o run;
      i := upto;
      o := !o + run
    end
  in
  for j = 0 to !ni - 1 do
    blit_survivors (splice_point !i ins_s.(j));
    out_s.(!o) <- ins_s.(j);
    out_e.(!o) <- ins_e.(j);
    out_r.(!o) <- ins_r.(j);
    incr o
  done;
  blit_survivors !ns;
  entry.starts <- out_s;
  entry.ends <- out_e;
  entry.rids <- out_r;
  entry.len <- total;
  Hashtbl.remove t.pending tag;
  t.repairs <- t.repairs + 1;
  t.merged_rows <- t.merged_rows + !ni;
  Span.event ~attrs:[ ("tag", tag) ] "relstore.index_repair";
  Ltree_obs.Histogram.observe_int merged_rows_hist !ni;
  entry

let entry t counters ~rids_of_tag ~fetch tag =
  match Hashtbl.find_opt t.tags tag with
  | None -> rebuild t counters ~rids_of_tag ~fetch tag
  | Some entry -> (
      match Hashtbl.find_opt t.pending tag with
      | None -> entry
      | Some touched when Hashtbl.length touched = 0 ->
        Hashtbl.remove t.pending tag;
        entry
      | Some touched -> repair t counters ~fetch tag entry touched)

(* First position in [e] with start > key (binary search; one comparison
   charged per probe). *)
let[@ltree.hot] upper_bound counters e key =
  let lo = ref 0 and hi = ref e.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    Counters.add_comparison counters 1;
    if e.starts.(mid) <= key then lo := mid + 1 else hi := mid
  done;
  !lo

let check t ~fetch =
  Hashtbl.iter
    (fun tag entry ->
      if not (Hashtbl.mem t.pending tag) then
        for i = 0 to entry.len - 1 do
          if i > 0 && entry.starts.(i) <= entry.starts.(i - 1) then
            failwith "Label_index: starts not strictly increasing";
          let s, e, dead = fetch entry.rids.(i) in
          if dead then failwith "Label_index: clean entry holds a dead row";
          if not (s = entry.starts.(i)) || not (e = entry.ends.(i)) then
            failwith "Label_index: clean entry disagrees with its row"
        done)
    t.tags
