module Counters = Ltree_metrics.Counters
module Column = Ltree_core.Column

(* Monomorphic comparison prelude (lint rule R2). *)
let ( = ) : int -> int -> bool = Stdlib.( = )
let ( < ) : int -> int -> bool = Stdlib.( < )
let ( <= ) : int -> int -> bool = Stdlib.( <= )
let ( >= ) : int -> int -> bool = Stdlib.( >= )
let max : int -> int -> int = Stdlib.max

let _ = ( <= )

(* Residency and dirty bits live in dense per-table columns indexed by
   page number: [clocks.(table)] maps a page to its last-use clock (-1
   when not resident), [dirties.(table)] to its dirty flag.  A touch is
   then two array loads and a store — no tuple key, no hashing, no
   generic comparison — which is what lets the row fetches on the
   query emit path stay on the R9-audited allocation-free spine. *)
type t = {
  capacity : int;
  counters : Counters.t;
  mutable clocks : Column.t array;
  mutable dirties : Column.t array;
  mutable resident_count : int;
  mutable dirty_count : int;
  mutable clock : int;
  mutable next_table : int;
}

let create ?(capacity = 64) counters =
  if capacity < 1 then invalid_arg "Pager.create: capacity must be >= 1";
  { capacity; counters; clocks = [||]; dirties = [||];
    resident_count = 0; dirty_count = 0; clock = 0; next_table = 0 }

let counters t = t.counters

(* Make [clocks.(table)]/[dirties.(table)] exist and cover [page].
   Growth only — the columns keep their buffers for the pager's
   lifetime, so steady-state touches never come here. *)
let[@ltree.cold] grow t ~table ~page =
  let n = Array.length t.clocks in
  if table >= n then begin
    let nn = max (table + 1) (max 4 (2 * n)) in
    t.clocks <-
      Array.init nn (fun i ->
          if i < n then t.clocks.(i) else Column.create ~capacity:16 ());
    t.dirties <-
      Array.init nn (fun i ->
          if i < n then t.dirties.(i) else Column.create ~capacity:16 ())
  end;
  let c = t.clocks.(table) and d = t.dirties.(table) in
  while Column.length c <= page do
    Column.push c (-1);
    Column.push d 0
  done

let write_back t ~table ~page =
  let d = t.dirties.(table) in
  if page < Column.length d && Column.get d page = 1 then begin
    Counters.add_page_write t.counters 1;
    Column.set d page 0;
    t.dirty_count <- t.dirty_count - 1
  end

let evict_oldest t =
  let bt = ref (-1) and bp = ref (-1) and bc = ref Stdlib.max_int in
  Array.iteri
    (fun ti c ->
      for p = 0 to Column.length c - 1 do
        let v = Column.get c p in
        if v >= 0 && v < !bc then begin
          bc := v;
          bt := ti;
          bp := p
        end
      done)
    t.clocks;
  if !bt >= 0 then begin
    write_back t ~table:!bt ~page:!bp;
    Column.set t.clocks.(!bt) !bp (-1);
    t.resident_count <- t.resident_count - 1
  end

(* Residency miss: count the read, evict at capacity, admit. *)
let touch_miss t ~table ~page =
  Counters.add_page_read t.counters 1;
  if t.resident_count >= t.capacity then (evict_oldest t [@ltree.cold]);
  Column.set t.clocks.(table) page t.clock;
  t.resident_count <- t.resident_count + 1

(* Read-only touch, no optional argument: the optional default would
   compile to an inner closure, which the R9 audit of hot callers (row
   fetches on the query emit path) rightly rejects. *)
let[@ltree.hot] touch_read t ~table ~page =
  t.clock <- t.clock + 1;
  if
    table >= Array.length t.clocks
    || page >= Column.length (Array.unsafe_get t.clocks table)
  then (grow t ~table ~page [@ltree.cold]);
  let c = Array.unsafe_get t.clocks table in
  if Column.get c page >= 0 then Column.set c page t.clock
  else touch_miss t ~table ~page

let touch ?(write = false) t ~table ~page =
  touch_read t ~table ~page;
  if write then begin
    let d = t.dirties.(table) in
    if Column.get d page = 0 then begin
      Column.set d page 1;
      t.dirty_count <- t.dirty_count + 1
    end
  end

(* Every write-back — eviction or flush — goes through [write_back], so
   a page's dirty bit is consumed exactly once and the page_write count
   is the same whether the page left the pool by eviction or by flush. *)
let flush_pages =
  Ltree_obs.Registry.histogram ~name:"pager_flush_pages"
    ~help:"Dirty pages written back per pager flush"
    ~bounds:(Ltree_obs.Histogram.log2_bounds ~start:1. ~count:12)
    ()

let flush_dirty t =
  Ltree_obs.Span.with_ ~name:"pager.flush" ~counters:t.counters (fun () ->
      let written = ref 0 in
      Array.iteri
        (fun ti d ->
          for p = 0 to Column.length d - 1 do
            if Column.get d p = 1 then begin
              write_back t ~table:ti ~page:p;
              incr written
            end
          done)
        t.dirties;
      Ltree_obs.Histogram.observe_int flush_pages !written;
      !written)

let flush t =
  ignore (flush_dirty t);
  Array.iter
    (fun c ->
      for p = 0 to Column.length c - 1 do
        Column.set c p (-1)
      done)
    t.clocks;
  t.resident_count <- 0

let dirty t = t.dirty_count

let fresh_table_id t =
  let id = t.next_table in
  t.next_table <- id + 1;
  id

let resident t = t.resident_count
