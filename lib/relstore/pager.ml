module Counters = Ltree_metrics.Counters

(* Monomorphic comparison prelude (lint rule R2). *)
let ( < ) : int -> int -> bool = Stdlib.( < )
let ( <= ) : int -> int -> bool = Stdlib.( <= )
let ( >= ) : int -> int -> bool = Stdlib.( >= )

type t = {
  capacity : int;
  counters : Counters.t;
  resident : (int * int, int) Hashtbl.t; (* (table, page) -> last use *)
  dirty : (int * int, unit) Hashtbl.t;
  mutable clock : int;
  mutable next_table : int;
}

let create ?(capacity = 64) counters =
  if capacity < 1 then invalid_arg "Pager.create: capacity must be >= 1";
  { capacity; counters; resident = Hashtbl.create 128;
    dirty = Hashtbl.create 16; clock = 0; next_table = 0 }

let counters t = t.counters

let write_back t key =
  if Hashtbl.mem t.dirty key then begin
    Counters.add_page_write t.counters 1;
    Hashtbl.remove t.dirty key
  end

let evict_oldest t =
  let victim = ref None in
  Hashtbl.iter
    (fun key used ->
      match !victim with
      | Some (_, u) when u <= used -> ()
      | Some _ | None -> victim := Some (key, used))
    t.resident;
  match !victim with
  | Some (key, _) ->
    write_back t key;
    Hashtbl.remove t.resident key
  | None -> ()

let touch ?(write = false) t ~table ~page =
  let key = (table, page) in
  t.clock <- t.clock + 1;
  if Hashtbl.mem t.resident key then Hashtbl.replace t.resident key t.clock
  else begin
    Counters.add_page_read t.counters 1;
    if Hashtbl.length t.resident >= t.capacity then evict_oldest t;
    Hashtbl.replace t.resident key t.clock
  end;
  if write then Hashtbl.replace t.dirty key ()

(* Every write-back — eviction or flush — goes through [write_back], so
   a page's dirty bit is consumed exactly once and the page_write count
   is the same whether the page left the pool by eviction or by flush. *)
let flush_pages =
  Ltree_obs.Registry.histogram ~name:"pager_flush_pages"
    ~help:"Dirty pages written back per pager flush"
    ~bounds:(Ltree_obs.Histogram.log2_bounds ~start:1. ~count:12)
    ()

let flush_dirty t =
  Ltree_obs.Span.with_ ~name:"pager.flush" ~counters:t.counters (fun () ->
      let keys = Hashtbl.fold (fun key () acc -> key :: acc) t.dirty [] in
      List.iter (fun key -> write_back t key) keys;
      Ltree_obs.Histogram.observe_int flush_pages (List.length keys);
      List.length keys)

let flush t =
  ignore (flush_dirty t);
  Hashtbl.reset t.resident

let dirty t = Hashtbl.length t.dirty

let fresh_table_id t =
  let id = t.next_table in
  t.next_table <- id + 1;
  id

let resident t = Hashtbl.length t.resident
