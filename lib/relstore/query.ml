module Counters = Ltree_metrics.Counters
module Span = Ltree_obs.Span
module Column = Ltree_core.Column
open Shredder

(* Comparisons per structural join, straight off the counter delta the
   join span accumulates -- the paper's query-cost metric. *)
let join_comparisons =
  Ltree_obs.Registry.histogram ~name:"query_join_comparisons"
    ~help:"Label comparisons per structural join query"
    ~bounds:(Ltree_obs.Histogram.log2_bounds ~start:1. ~count:24)
    ()

let observe_join r =
  Ltree_obs.Histogram.observe_int join_comparisons
    (Ltree_obs.Trace.delta r "comparisons")

(* Monomorphic comparison prelude (lint rule R2). *)
let ( = ) : int -> int -> bool = Stdlib.( = )
let ( <> ) : int -> int -> bool = Stdlib.( <> )
let ( < ) : int -> int -> bool = Stdlib.( < )
let ( <= ) : int -> int -> bool = Stdlib.( <= )
let ( > ) : int -> int -> bool = Stdlib.( > )
let ( >= ) : int -> int -> bool = Stdlib.( >= )
let max : int -> int -> int = Stdlib.max

let ids_of_tag tbl tag = Option.value ~default:[] (Hashtbl.find_opt tbl tag)

(* BFS from a set of node ids: each level is one parent-child self-join
   (probe the parent index, fetch every child row to learn its tag). *)
let edge_descendants_from (store : edge_store) seed desc =
  let result = ref [] in
  let frontier = ref seed in
  let running = ref (match seed with [] -> false | _ :: _ -> true) in
  while !running do
    let next = ref [] in
    List.iter
      (fun parent_id ->
        List.iter
          (fun rid ->
            let row = Rel_table.get store.edge_table rid in
            if String.equal row.e_tag desc then result := row.e_id :: !result;
            if not (String.equal row.e_tag "#text") then
              next := row.e_id :: !next)
          (ids_of_tag store.edge_by_parent parent_id))
      !frontier;
    frontier := !next;
    running := (match !next with [] -> false | _ :: _ -> true)
  done;
  List.sort_uniq Int.compare !result

(* Fetch the node ids of a tag's rows (one input-side scan). *)
let edge_seed (store : edge_store) tag =
  List.map
    (fun rid -> (Rel_table.get store.edge_table rid).e_id)
    (ids_of_tag store.edge_by_tag tag)

let edge_descendants (store : edge_store) ~anc ~desc =
  edge_descendants_from store (edge_seed store anc) desc

let edge_path (store : edge_store) = function
  | [] -> []
  | first :: rest ->
    List.fold_left
      (fun ids tag -> edge_descendants_from store ids tag)
      (List.sort_uniq Int.compare (edge_seed store first))
      rest

let edge_children (store : edge_store) ~parent ~child =
  let result = ref [] in
  List.iter
    (fun rid ->
      let row = Rel_table.get store.edge_table rid in
      List.iter
        (fun crid ->
          let crow = Rel_table.get store.edge_table crid in
          if String.equal crow.e_tag child then result := crow.e_id :: !result)
        (ids_of_tag store.edge_by_parent row.e_id))
    (ids_of_tag store.edge_by_tag parent);
  List.sort_uniq Int.compare !result

(* {1 The sort-on-fetch baseline}

   The pre-index query path, kept as the measured control (and as the
   boxed-list oracle the columnar differential tests drive against):
   every fetch re-sorts the tag's live rows (comparisons charged — that
   sort is exactly the work the incremental index amortizes away), and
   the stack join runs over linked lists. *)

let fetch_rows pager (store : label_store) tag =
  let counters = Pager.counters pager in
  List.map (Rel_table.get store.label_table) (ids_of_tag store.label_by_tag tag)
  |> List.filter (fun r -> not r.l_dead)
  |> List.sort (fun a b ->
         Counters.add_comparison counters 1;
         Int.compare a.l_start b.l_start)

(* The single label self-join: stack-based interval-containment merge.
   One comparison is charged per ancestor examined -- an empty ancestor
   list costs nothing (the paper's cost model counts comparisons made,
   not loop exits). *)
let structural_pairs pager ancs descs ~extra =
  let counters = Pager.counters pager in
  let out = ref [] in
  let stack = ref [] in
  let rec push_opens ancs d_start =
    match ancs with
    | [] -> []
    | (a : label_row) :: rest ->
      Counters.add_comparison counters 1;
      if a.l_start < d_start then begin
        stack := a :: List.filter (fun s -> s.l_end > a.l_start) !stack;
        push_opens rest d_start
      end
      else ancs
  in
  let rec go ancs descs =
    match descs with
    | [] -> ()
    | (d : label_row) :: drest ->
      let ancs = push_opens ancs d.l_start in
      stack := List.filter (fun s -> s.l_end > d.l_start) !stack;
      List.iter
        (fun a ->
          Counters.add_comparison counters 1;
          if d.l_end < a.l_end && extra a d then out := d :: !out)
        !stack;
      go ancs drest
  in
  go ancs descs;
  !out

let label_descendants_baseline pager store ~anc ~desc =
  let ancs = fetch_rows pager store anc in
  let descs = fetch_rows pager store desc in
  structural_pairs pager ancs descs ~extra:(fun _ _ -> true)
  |> List.map (fun (r : label_row) -> r.l_id)
  |> List.sort_uniq Int.compare

(* {1 The incremental-index fast path} *)

let tag_entry pager (store : label_store) tag =
  Label_index.entry store.label_index (Pager.counters pager)
    ~rids_of_tag:(ids_of_tag store.label_by_tag)
    ~fetch:(fun rid ->
      let row = Rel_table.get store.label_table rid in
      (row.l_start, row.l_end, row.l_dead))
    tag

(* [clean_entry] is the allocation-free entry lookup: the clean fast
   path builds nothing; only a dirty or unmaterialized tag falls back to
   the repairing [tag_entry] (whose fetch closures allocate). *)
let clean_entry pager (store : label_store) tag =
  match Label_index.clean store.label_index tag with
  | e -> e
  | exception Label_index.Dirty -> tag_entry pager store tag

(* The unified array-cursor structural join: both inputs are sorted
   (start, end, rid) columns; cursors are int indexes; the run-time
   stack of open ancestors is a pair of growable int arrays (interval
   end + input position).  When no ancestor is open and the next one
   starts far ahead, the descendant cursor leaps there by binary search
   instead of grinding through unmatched rows (the staircase skip).
   [emit] gets the input positions of each (ancestor, descendant)
   containment pair; descendant positions arrive in ascending order,
   duplicates adjacent. *)
let[@ltree.hot] array_join counters (a : Label_index.entry)
    (d : Label_index.entry) ~emit =
  (* [@ltree.cold]: per-call setup — two 16-slot scratch arrays and the
     stack helpers' closures are the join's only allocations, paid once
     per join, never per row.  The per-row path below is checked
     allocation-free by R9 (ltree-analyze). *)
  let[@ltree.cold] stack_end = ref (Array.make 16 0) in
  let[@ltree.cold] stack_pos = ref (Array.make 16 0) in
  let sp = ref 0 in
  let[@ltree.cold] push apos aend =
    (if !sp = Array.length !stack_end then
       begin
         (* amortized doubling: off the per-row fast path *)
         let bigger_end = Array.make (2 * !sp) 0
         and bigger_pos = Array.make (2 * !sp) 0 in
         Array.blit !stack_end 0 bigger_end 0 !sp;
         Array.blit !stack_pos 0 bigger_pos 0 !sp;
         stack_end := bigger_end;
         stack_pos := bigger_pos
       end [@ltree.cold]);
    !stack_end.(!sp) <- aend;
    !stack_pos.(!sp) <- apos;
    incr sp
  in
  (* Pop open ancestors whose interval closed before [bound].  Stack
     ends decrease upward (intervals nest), so stopping at the first
     survivor is enough. *)
  let[@ltree.cold] pop_closed bound =
    let closing = ref true in
    while !closing && !sp > 0 do
      Counters.add_comparison counters 1;
      if !stack_end.(!sp - 1) > bound then closing := false else decr sp
    done
  in
  let ai = ref 0 and di = ref 0 in
  let finished = ref false in
  while (not !finished) && !di < d.len do
    let ds = Column.get d.starts !di in
    (* Open every ancestor that starts before this descendant. *)
    let opening = ref true in
    while !opening && !ai < a.len do
      Counters.add_comparison counters 1;
      let astart = Column.get a.starts !ai in
      if astart < ds then begin
        pop_closed astart;
        push !ai (Column.get a.ends !ai);
        incr ai
      end
      else opening := false
    done;
    pop_closed ds;
    if !sp > 0 then begin
      (* Every stacked ancestor contains the descendant's start, and XML
         intervals nest or are disjoint, so start containment implies
         full containment — no per-pair end comparison needed (the
         baseline plan pays one; this is part of the fast path's win). *)
      for s = 0 to !sp - 1 do
        emit !stack_pos.(s) !di
      done;
      incr di
    end
    else if !ai >= a.len then
      (* No ancestor is open and none remain: nothing further matches. *)
      finished := true
    else
      (* Stack empty, next ancestor starts at or after ds: no descendant
         before that point has a match — leap over them. *)
      di :=
        max (!di + 1)
          (Label_index.upper_bound counters d (Column.get a.starts !ai))
  done

(* {2 The zero-alloc descendants spine}

   The same join, specialized to the [a//b] result shape (the set of
   matched descendants) and to the index's preallocated workspace: the
   cursors live in the workspace's [jstate] record, the open-ancestor
   stack and the result are reused columns, and each matched descendant
   is emitted once (so the single emit-side row fetch per match is
   unchanged from [join_to_entry] + [ids_of_entry]).  No refs, no
   closures, no arrays: R9 checks every call from this spine
   allocation-free. *)

let[@ltree.hot] rec pop_closed_col counters stack bound =
  let sp = Column.length stack in
  if
    sp > 0
    && (Counters.add_comparison counters 1;
        Column.get stack (sp - 1) <= bound)
  then begin
    Column.set_len stack (sp - 1);
    pop_closed_col counters stack bound
  end

let[@ltree.hot] descendants_into counters table (a : Label_index.entry)
    (d : Label_index.entry) (ws : Label_index.workspace) =
  let js = ws.Label_index.w_js in
  let stack = ws.Label_index.w_stack in
  let out = ws.Label_index.w_out in
  Column.clear stack;
  Column.clear out;
  js.Label_index.js_ai <- 0;
  js.Label_index.js_di <- 0;
  js.Label_index.js_done <- false;
  while (not js.Label_index.js_done) && js.Label_index.js_di < d.len do
    let ds = Column.get d.starts js.Label_index.js_di in
    while
      js.Label_index.js_ai < a.len
      && (Counters.add_comparison counters 1;
          Column.get a.starts js.Label_index.js_ai < ds)
    do
      pop_closed_col counters stack (Column.get a.starts js.Label_index.js_ai);
      Column.push stack (Column.get a.ends js.Label_index.js_ai);
      js.Label_index.js_ai <- js.Label_index.js_ai + 1
    done;
    pop_closed_col counters stack ds;
    if Column.length stack > 0 then begin
      (* Start containment implies full containment (nesting), and the
         descendant matches no matter how many ancestors are open — one
         emit, one row fetch. *)
      Column.push out
        (Rel_table.get table (Column.get d.rids js.Label_index.js_di)).l_id;
      js.Label_index.js_di <- js.Label_index.js_di + 1
    end
    else if js.Label_index.js_ai >= a.len then js.Label_index.js_done <- true
    else
      js.Label_index.js_di <-
        max
          (js.Label_index.js_di + 1)
          (Label_index.upper_bound counters d
             (Column.get a.starts js.Label_index.js_ai))
  done

(* The full hot plan: clean-entry lookup, zero-alloc join, in-place
   sort+dedup of the result column.  The returned column is the index
   workspace's — borrowed until the next query on the same store. *)
let label_descendants_hot pager (store : label_store) ~anc ~desc =
  let counters = Pager.counters pager in
  let a = clean_entry pager store anc in
  let d = clean_entry pager store desc in
  let ws = Label_index.workspace store.label_index in
  descendants_into counters store.label_table a d ws;
  Column.sort_dedup ws.Label_index.w_out ~mark:ws.Label_index.w_mark;
  ws.Label_index.w_out

(* Join two entries into an entry of the matched descendants — the
   pipelined form used between the steps of a path.  Adjacent-duplicate
   emissions collapse, and the output inherits ascending start order
   from the descendant cursor, so no re-sort is ever needed. *)
let join_to_entry counters (a : Label_index.entry) (d : Label_index.entry) =
  let cap = max 16 d.len in
  let out =
    { Label_index.starts = Column.create ~capacity:cap ();
      ends = Column.create ~capacity:cap ();
      rids = Column.create ~capacity:cap ();
      len = 0;
      stamp = 0 }
  in
  let last = ref (-1) in
  array_join counters a d ~emit:(fun _ dpos ->
      if dpos <> !last then begin
        last := dpos;
        Column.push out.Label_index.starts (Column.get d.starts dpos);
        Column.push out.Label_index.ends (Column.get d.ends dpos);
        Column.push out.Label_index.rids (Column.get d.rids dpos)
      end);
  out.Label_index.len <- Column.length out.Label_index.starts;
  out

(* Map an entry's rows to sorted Dom ids, fetching each row once (the
   emit-side page reads, as in the index-nested-loop plan). *)
let ids_of_entry (store : label_store) (e : Label_index.entry) =
  let out = ref [] in
  for i = 0 to e.len - 1 do
    out := (Rel_table.get store.label_table (Column.get e.rids i)).l_id :: !out
  done;
  List.sort Int.compare !out

let label_descendants pager store ~anc ~desc =
  let counters = Pager.counters pager in
  Span.with_ ~name:"query.descendants" ~counters
    ~attrs:[ ("anc", anc); ("desc", desc) ]
    ~on_close:observe_join (fun () ->
      Column.to_list (label_descendants_hot pager store ~anc ~desc))

let label_children pager store ~parent ~child =
  let counters = Pager.counters pager in
  Span.with_ ~name:"query.children" ~counters
    ~attrs:[ ("parent", parent); ("child", child) ]
    ~on_close:observe_join (fun () ->
      let a = tag_entry pager store parent in
      let d = tag_entry pager store child in
      let out = ref [] in
      array_join counters a d ~emit:(fun apos dpos ->
          let arow = Rel_table.get store.label_table (Column.get a.rids apos) in
          let drow = Rel_table.get store.label_table (Column.get d.rids dpos) in
          if drow.l_level = arow.l_level + 1 then out := drow.l_id :: !out);
      List.sort_uniq Int.compare !out)

let label_path pager store = function
  | [] -> []
  | first :: rest ->
    let counters = Pager.counters pager in
    Span.with_ ~name:"query.path" ~counters
      ~attrs:[ ("steps", string_of_int (1 + List.length rest)) ]
      ~on_close:observe_join (fun () ->
        let final =
          List.fold_left
            (fun acc tag ->
              join_to_entry counters acc (tag_entry pager store tag))
            (tag_entry pager store first)
            rest
        in
        ids_of_entry store final)

(* The index-nested-loop plan over the same incremental index: for each
   ancestor, binary-search the descendant entry and scan its interval.
   Cheap when the anchors are few and selective (reads proportional to
   the matches); the merge join wins once they blanket the document —
   the E8d crossover. *)
let label_descendants_inl pager store ~anc ~desc =
  let counters = Pager.counters pager in
  Span.with_ ~name:"query.descendants_inl" ~counters
    ~attrs:[ ("anc", anc); ("desc", desc) ]
    ~on_close:observe_join (fun () ->
      let a = tag_entry pager store anc in
      let d = tag_entry pager store desc in
      let out = ref [] in
      for apos = 0 to a.len - 1 do
        let astart = Column.get a.starts apos
        and aend = Column.get a.ends apos in
        let i = ref (Label_index.upper_bound counters d astart) in
        let scanning = ref true in
        while !scanning && !i < d.len do
          Counters.add_comparison counters 1;
          if Column.get d.starts !i < aend then begin
            (* XML intervals nest, so start containment implies full
               containment. *)
            out :=
              (Rel_table.get store.label_table (Column.get d.rids !i)).l_id
              :: !out;
            incr i
          end
          else scanning := false
        done
      done;
      List.sort_uniq Int.compare !out)

let index_stats (store : label_store) = Label_index.stats store.label_index
