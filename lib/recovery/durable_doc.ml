module Labeled_doc = Ltree_doc.Labeled_doc
module Snapshot = Ltree_doc.Snapshot
module Journal = Ltree_doc.Journal
module Invariant = Ltree_analysis.Invariant
module Span = Ltree_obs.Span

(* Append latency covers journaling plus any group-commit fsync, so the
   log-bucketed histogram separates buffered appends (sub-microsecond)
   from synced ones. *)
let append_seconds =
  Ltree_obs.Registry.histogram ~name:"recovery_append_seconds"
    ~help:"Latency of Durable_doc journaled operations in seconds"
    ~bounds:(Ltree_obs.Histogram.log2_bounds ~start:1e-7 ~count:20)
    ()

let replayed_entries =
  Ltree_obs.Registry.histogram ~name:"recovery_replayed_entries"
    ~help:"Journal entries replayed per recovery"
    ~bounds:(Ltree_obs.Histogram.log2_bounds ~start:1. ~count:16)
    ()

(* Monomorphic comparison prelude (lint rule R2). *)
let ( = ) : int -> int -> bool = Stdlib.( = )
let ( <> ) : int -> int -> bool = Stdlib.( <> )
let ( < ) : int -> int -> bool = Stdlib.( < )
let max : int -> int -> int = Stdlib.max
let ( > ) : int -> int -> bool = Stdlib.( > )
let ( >= ) : int -> int -> bool = Stdlib.( >= )
let ( <= ) : int -> int -> bool = Stdlib.( <= )

let wal_magic = "ltree-wal 1"
let snap_magic = "ltree-durable-snapshot 1"

type fault =
  | Missing_file of string
  | Empty_journal of string
  | Bad_header of { file : string; detail : string }
  | Snapshot_corrupt of { file : string; detail : string }
  | Checksum_mismatch of { seq : int }
  | Sequence_gap of { expected : int; got : int }
  | Torn_record of { seq : int }
  | Bad_record of { seq : int; detail : string }
  | Unresolvable_anchor of { seq : int; anchor : int }
  | Apply_failed of { seq : int; detail : string }

let fault_kind = function
  | Missing_file _ -> "missing-file"
  | Empty_journal _ -> "empty-journal"
  | Bad_header _ -> "bad-header"
  | Snapshot_corrupt _ -> "snapshot-corrupt"
  | Checksum_mismatch _ -> "checksum-mismatch"
  | Sequence_gap _ -> "sequence-gap"
  | Torn_record _ -> "torn-record"
  | Bad_record _ -> "bad-record"
  | Unresolvable_anchor _ -> "unresolvable-anchor"
  | Apply_failed _ -> "apply-failed"

let pp_fault ppf fault =
  match fault with
  | Missing_file f -> Format.fprintf ppf "missing file %s" f
  | Empty_journal f -> Format.fprintf ppf "empty journal file %s" f
  | Bad_header { file; detail } ->
    Format.fprintf ppf "bad header in %s: %s" file detail
  | Snapshot_corrupt { file; detail } ->
    Format.fprintf ppf "corrupt snapshot %s: %s" file detail
  | Checksum_mismatch { seq } ->
    Format.fprintf ppf "checksum mismatch at record %d" seq
  | Sequence_gap { expected; got } ->
    Format.fprintf ppf "sequence gap: expected %d, got %d" expected got
  | Torn_record { seq } -> Format.fprintf ppf "torn record %d" seq
  | Bad_record { seq; detail } ->
    Format.fprintf ppf "bad record %d: %s" seq detail
  | Unresolvable_anchor { seq; anchor } ->
    Format.fprintf ppf "record %d: anchor %d does not resolve" seq anchor
  | Apply_failed { seq; detail } ->
    Format.fprintf ppf "record %d failed to apply: %s" seq detail

type snapshot_source = Current | Previous

let source_name = function Current -> "current" | Previous -> "previous"

type report = {
  source : snapshot_source;
  base_seq : int;
  epoch : int;
  entries_skipped : int;
  entries_replayed : int;
  entries_dropped : int;
  faults : fault list;
  durable_seq : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>snapshot: %s (base seq %d, epoch %d)@,\
     journal: %d replayed, %d skipped, %d dropped@,\
     durable seq: %d@,\
     faults: %s@]"
    (source_name r.source) r.base_seq r.epoch r.entries_replayed
    r.entries_skipped r.entries_dropped r.durable_seq
    (match r.faults with
     | [] -> "none"
     | faults ->
       String.concat ", "
         (List.map (fun f -> Format.asprintf "%a" pp_fault f) faults))

type t = {
  io : Fault.io;
  dir : string;
  ldoc : Labeled_doc.t;
  group_commit : int;
  pending : Buffer.t;  (* encoded, not yet appended records *)
  mutable pending_count : int;
  mutable last_seq : int;  (* last sequence number assigned *)
  epoch : int;
}

let journal_path t = Filename.concat t.dir "journal"
let snapshot_path t = Filename.concat t.dir "snapshot"
let snapshot_prev_path t = Filename.concat t.dir "snapshot.prev"
let snapshot_tmp_path t = Filename.concat t.dir "snapshot.tmp"

let ldoc t = t.ldoc
let last_seq t = t.last_seq
let pending t = t.pending_count
let epoch t = t.epoch

(* {1 Record framing}

   One record per line: [E <seq> <crc> <payload>] where [payload] is
   {!Journal.entry_to_line} (already newline-free) and [crc] is the
   CRC-32 of ["<seq> <payload>"] — covering the sequence number, so a
   record cannot be replayed under the wrong position either. *)

let record_body ~seq payload = string_of_int seq ^ " " ^ payload

let record_line ~seq entry =
  let payload = Journal.entry_to_line entry in
  Printf.sprintf "E %s %s\n"
    (Checksum.to_hex (Checksum.crc32 (record_body ~seq payload)))
    (record_body ~seq payload)

(* {1 Journal scanning} *)

type scan = {
  records : (int * Journal.entry) list;  (* oldest first, contiguous *)
  scan_fault : fault option;  (* why the scan stopped, if it did *)
  dropped : int;  (* line-shaped chunks after the fault *)
  valid_bytes : int;  (* prefix length holding header + valid records *)
}

(* Parse ["E <crc> <seq> <payload>"].  Any deviation is a typed fault;
   the caller stops at the first one (a journal is only trusted up to
   its first bad byte). *)
let parse_record ~expected_seq line =
  match String.split_on_char ' ' line with
  | "E" :: crc :: seq :: rest -> (
      match (Checksum.of_hex crc, int_of_string_opt seq) with
      | None, _ -> Error (Bad_record { seq = expected_seq; detail = "bad crc field" })
      | _, None -> Error (Bad_record { seq = expected_seq; detail = "bad seq field" })
      | Some crc, Some seq ->
        let payload = String.concat " " rest in
        if Checksum.crc32 (record_body ~seq payload) <> crc then
          Error (Checksum_mismatch { seq = expected_seq })
        else if expected_seq <> 0 && seq <> expected_seq then
          Error (Sequence_gap { expected = expected_seq; got = seq })
        else (
          match Journal.entry_of_line payload with
          | entry -> Ok (seq, entry)
          | exception Journal.Corrupt detail ->
            Error (Bad_record { seq; detail })))
  | _ -> Error (Bad_record { seq = expected_seq; detail = "unrecognized line" })

(* Count how many line-shaped chunks follow offset [from] — the size of
   the tail a fault condemns. *)
let count_tail_lines data from =
  let n = ref 0 in
  String.iteri (fun i c -> if i >= from && Char.equal c '\n' then incr n) data;
  let len = String.length data in
  if len > from && not (Char.equal data.[len - 1] '\n') then incr n;
  !n

let scan_journal io ~dir =
  let path = Filename.concat dir "journal" in
  match io.Fault.read_file path with
  | None ->
    { records = []; scan_fault = Some (Missing_file path); dropped = 0;
      valid_bytes = 0 }
  | Some data ->
    let len = String.length data in
    let header_len = String.length wal_magic + 1 in
    if len = 0 then
      (* A crash while writing the very first header byte (e.g. a torn
         write that tore at offset 0 during [initialize]) leaves the
         file present but empty.  That is not a condemned tail — there
         are no records to condemn — so it gets its own typed fault and
         a zero drop count: recovery re-homes the header and proceeds
         from the snapshot alone. *)
      { records = []; scan_fault = Some (Empty_journal path); dropped = 0;
        valid_bytes = 0 }
    else if
      len < header_len
      || not (String.equal (String.sub data 0 (header_len - 1)) wal_magic)
      || not (Char.equal data.[header_len - 1] '\n')
    then
      { records = [];
        scan_fault = Some (Bad_header { file = path; detail = "bad magic" });
        dropped = count_tail_lines data 0;
        valid_bytes = 0 }
    else begin
      let records = ref [] in
      let fault = ref None in
      let pos = ref header_len in
      let valid = ref header_len in
      let expected = ref 0 in
      while Option.is_none !fault && !pos < len do
        match String.index_from_opt data !pos '\n' with
        | None ->
          (* The file ends mid-line: the record was torn by the crash. *)
          fault := Some (Torn_record { seq = max 1 !expected })
        | Some nl -> (
          let line = String.sub data !pos (nl - !pos) in
          match parse_record ~expected_seq:!expected line with
          | Ok (seq, entry) ->
            records := (seq, entry) :: !records;
            expected := seq + 1;
            pos := nl + 1;
            valid := !pos
          | Error f -> fault := Some f)
      done;
      { records = List.rev !records;
        scan_fault = !fault;
        dropped = count_tail_lines data !valid;
        valid_bytes = !valid }
    end

(* {1 Snapshot files} *)

let encode_snapshot ~seq ~epoch payload =
  Printf.sprintf "%s\nseq %d\nepoch %d\ncrc %s\nlen %d\n%s" snap_magic seq
    epoch
    (Checksum.to_hex (Checksum.crc32 payload))
    (String.length payload) payload

(* Split [data] into header lines and payload without trusting any of
   it: every step that can fail returns a typed fault. *)
let load_snapshot_file io path =
  match io.Fault.read_file path with
  | None -> Error (Missing_file path)
  | Some data ->
    let fail detail = Error (Snapshot_corrupt { file = path; detail }) in
    let next_line pos =
      match String.index_from_opt data pos '\n' with
      | None -> None
      | Some nl -> Some (String.sub data pos (nl - pos), nl + 1)
    in
    (match next_line 0 with
     | Some (m, p0) when String.equal m snap_magic -> (
         match next_line p0 with
         | Some (seq_line, p1) -> (
             match next_line p1 with
             | Some (epoch_line, p2) -> (
                 match next_line p2 with
                 | Some (crc_line, p3) -> (
                     match next_line p3 with
                     | Some (len_line, p4) -> (
                         let field prefix line =
                           let pl = String.length prefix in
                           if
                             String.length line > pl
                             && String.equal (String.sub line 0 pl) prefix
                           then
                             String.sub line pl (String.length line - pl)
                           else ""
                         in
                         match
                           ( int_of_string_opt (field "seq " seq_line),
                             int_of_string_opt (field "epoch " epoch_line),
                             Checksum.of_hex (field "crc " crc_line),
                             int_of_string_opt (field "len " len_line) )
                         with
                         | Some seq, Some epoch, Some crc, Some len ->
                           if len < 0 || String.length data - p4 <> len
                           then fail "payload length mismatch"
                           else
                             let payload = String.sub data p4 len in
                             if Checksum.crc32 payload <> crc then
                               fail "payload checksum mismatch"
                             else (
                               match Snapshot.load payload with
                               | ldoc -> Ok (ldoc, seq, epoch)
                               | exception Snapshot.Corrupt detail ->
                                 fail detail
                               | exception Invalid_argument detail ->
                                 fail detail
                               | exception
                                   Invariant.Violation { name; detail } ->
                                 fail (name ^ ": " ^ detail))
                         | _ -> fail "bad header field")
                     | None -> fail "truncated header")
                 | None -> fail "truncated header")
             | None -> fail "truncated header")
         | None -> fail "truncated header")
     | Some _ -> Bad_header { file = path; detail = "bad magic" } |> Result.error
     | None -> Bad_header { file = path; detail = "empty file" } |> Result.error)

let newest_valid_snapshot io ~dir =
  let current = Filename.concat dir "snapshot" in
  let previous = Filename.concat dir "snapshot.prev" in
  match load_snapshot_file io current with
  | Ok (ldoc, seq, epoch) -> Ok (Current, ldoc, seq, epoch, [])
  | Error f1 -> (
      match load_snapshot_file io previous with
      | Ok (ldoc, seq, epoch) -> Ok (Previous, ldoc, seq, epoch, [ f1 ])
      | Error f2 -> Error [ f1; f2 ])

(* {1 Appending} *)

let flush_pending t =
  if t.pending_count > 0 then begin
    t.io.Fault.append_file (journal_path t) (Buffer.contents t.pending);
    Buffer.clear t.pending;
    t.pending_count <- 0;
    t.io.Fault.fsync (journal_path t)
  end

let sync t = flush_pending t

let apply t entry =
  Span.with_ ~name:"recovery.append"
    ~counters:(Labeled_doc.counters t.ldoc)
    ~on_close:(fun r ->
      Ltree_obs.Histogram.observe append_seconds r.Ltree_obs.Trace.duration)
    (fun () ->
      Journal.apply_entry t.ldoc entry;
      t.last_seq <- t.last_seq + 1;
      (* Causal tracing: the record's trace id is content-derived from
         (seq, payload), so this stamp and the replica's recomputation
         agree without shipping the id.  First-wins keeps the primary's
         append tick when a replica re-applies the same record. *)
      if Ltree_obs.Causal.is_enabled () then
        Ltree_obs.Causal.stamp Ltree_obs.Causal.Append ~seq:t.last_seq
          ~payload:(Journal.entry_to_line entry);
      Buffer.add_string t.pending (record_line ~seq:t.last_seq entry);
      t.pending_count <- t.pending_count + 1;
      if t.pending_count >= t.group_commit then flush_pending t)

let insert_xml t ~anchor ~index ~xml =
  apply t (Journal.Insert { anchor; index; xml })

let delete t ~anchor = apply t (Journal.Delete { anchor })
let set_text t ~anchor ~text = apply t (Journal.Set_text { anchor; text })

(* {1 Rotation}

   The protocol that makes a checkpoint atomic: flush the journal tail
   (the snapshot must not get ahead of the log), write the new snapshot
   to a temporary file and fsync it, demote the current snapshot to
   [snapshot.prev], rename the temporary into place (the commit point —
   rename is atomic), then truncate the journal.  A crash between any
   two steps leaves either the old snapshot with a full journal, or the
   new snapshot with a stale journal whose records recovery skips by
   sequence number. *)

let checkpoint t =
  Span.with_ ~name:"recovery.checkpoint"
    ~counters:(Labeled_doc.counters t.ldoc)
    ~attrs:[ ("seq", string_of_int t.last_seq) ]
    (fun () ->
      flush_pending t;
      let encoded =
        encode_snapshot ~seq:t.last_seq ~epoch:t.epoch (Snapshot.save t.ldoc)
      in
      let tmp = snapshot_tmp_path t in
      t.io.Fault.write_file tmp encoded;
      t.io.Fault.fsync tmp;
      if t.io.Fault.file_exists (snapshot_path t) then
        t.io.Fault.rename_file ~src:(snapshot_path t)
          ~dst:(snapshot_prev_path t);
      t.io.Fault.rename_file ~src:tmp ~dst:(snapshot_path t);
      t.io.Fault.write_file (journal_path t) (wal_magic ^ "\n");
      t.io.Fault.fsync (journal_path t))

let initialize ~io ?(group_commit = 1) ~dir ldoc =
  if group_commit < 1 then
    invalid_arg "Durable_doc.initialize: group_commit must be >= 1";
  let t =
    { io; dir; ldoc; group_commit; pending = Buffer.create 256;
      pending_count = 0; last_seq = 0; epoch = 0 }
  in
  checkpoint t;
  t

(* {1 Recovery} *)

let recover_raw ~io ~group_commit ~dir () =
  if group_commit < 1 then
    invalid_arg "Durable_doc.recover: group_commit must be >= 1";
  match newest_valid_snapshot io ~dir with
  | Error faults -> Error faults
  | Ok (source, ldoc, base_seq, old_epoch, snap_faults) ->
    let scan = scan_journal io ~dir in
    let faults = ref (List.rev snap_faults) in
    (match scan.scan_fault with
     | Some f -> faults := f :: !faults
     | None -> ());
    let skipped = ref 0 and replayed = ref 0 in
    let dropped = ref scan.dropped in
    let applied_to = ref base_seq in
    let keep = Buffer.create 1024 in
    Buffer.add_string keep (wal_magic ^ "\n");
    let rec replay = function
      | [] -> ()
      | (seq, entry) :: rest ->
        if seq <= base_seq then begin
          (* Written before the snapshot was taken — already inside it. *)
          incr skipped;
          Buffer.add_string keep (record_line ~seq entry);
          replay rest
        end
        else if seq <> !applied_to + 1 then begin
          (* The journal starts after the snapshot's horizon: it cannot
             bridge the gap, so nothing further is trustworthy. *)
          faults :=
            Sequence_gap { expected = !applied_to + 1; got = seq }
            :: !faults;
          dropped := !dropped + 1 + List.length rest
        end
        else (
          match Journal.apply_entry ldoc entry with
          | () ->
            incr replayed;
            applied_to := seq;
            Buffer.add_string keep (record_line ~seq entry);
            replay rest
          | exception Journal.Replay_error { anchor; _ } ->
            faults := Unresolvable_anchor { seq; anchor } :: !faults;
            dropped := !dropped + 1 + List.length rest
          | exception Journal.Corrupt detail ->
            faults := Bad_record { seq; detail } :: !faults;
            dropped := !dropped + 1 + List.length rest
          | exception Invalid_argument detail ->
            faults := Apply_failed { seq; detail } :: !faults;
            dropped := !dropped + 1 + List.length rest)
    in
    replay scan.records;
    let faults = List.rev !faults in
    (* Truncate the condemned tail so the next session starts from a
       fully valid journal (and re-home the journal when recovery fell
       back to the previous snapshot: the current snapshot file is
       damaged goods, remove it so it cannot shadow the good one). *)
    let journal = Filename.concat dir "journal" in
    if !dropped > 0 || Option.is_some scan.scan_fault then begin
      io.Fault.write_file journal (Buffer.contents keep);
      io.Fault.fsync journal
    end;
    (match source with
     | Previous ->
       io.Fault.remove_file (Filename.concat dir "snapshot");
       io.Fault.rename_file
         ~src:(Filename.concat dir "snapshot.prev")
         ~dst:(Filename.concat dir "snapshot")
     | Current -> ());
    let t =
      { io; dir; ldoc; group_commit; pending = Buffer.create 256;
        pending_count = 0; last_seq = !applied_to; epoch = old_epoch + 1 }
    in
    Ok
      ( { source; base_seq; epoch = t.epoch; entries_skipped = !skipped;
          entries_replayed = !replayed; entries_dropped = !dropped;
          faults; durable_seq = !applied_to },
        t )

let recover ~io ?(group_commit = 1) ~dir () =
  Span.with_ ~name:"recovery.recover" (fun () ->
      let result = recover_raw ~io ~group_commit ~dir () in
      (match result with
       | Ok (report, _) ->
         Ltree_obs.Histogram.observe_int replayed_entries
           report.entries_replayed
       | Error _ -> ());
      result)
