module Labeled_doc = Ltree_doc.Labeled_doc
module Journal = Ltree_doc.Journal
module Dom = Ltree_xml.Dom
module Serializer = Ltree_xml.Serializer
module Xml_gen = Ltree_workload.Xml_gen
module Prng = Ltree_workload.Prng
module Invariant = Ltree_analysis.Invariant
module Shredder = Ltree_relstore.Shredder
module Pager = Ltree_relstore.Pager
module Query = Ltree_relstore.Query
module Counters = Ltree_metrics.Counters

(* Monomorphic comparison prelude (lint rule R2). *)
let ( = ) : int -> int -> bool = Stdlib.( = )
let ( <> ) : int -> int -> bool = Stdlib.( <> )
let ( < ) : int -> int -> bool = Stdlib.( < )
let ( > ) : int -> int -> bool = Stdlib.( > )
let ( <= ) : int -> int -> bool = Stdlib.( <= )
let ( >= ) : int -> int -> bool = Stdlib.( >= )
let min : int -> int -> int = Stdlib.min

let int_array_equal a b =
  Array.length a = Array.length b
  &&
  let rec go i = i >= Array.length a || (a.(i) = b.(i) && go (i + 1)) in
  go 0

type config = {
  seed : int;
  ops : int;
  doc_nodes : int;
  group_commit : int;
  checkpoint_every : int;
}

let default_config =
  { seed = 42; ops = 200; doc_nodes = 120; group_commit = 4;
    checkpoint_every = 32 }

let store_dir = "store"

(* {1 Script generation}

   The workload is a list of {!Journal.entry} values generated against a
   scratch document (so every anchor is valid at its position in the
   sequence).  Everything derives from the config seed: the same config
   always yields the same script, the same write points, and the same
   injected damage — a failing cell replays exactly. *)

let fresh_ldoc config =
  let doc =
    Xml_gen.generate ~seed:config.seed
      (Xml_gen.default_profile ~target_nodes:config.doc_nodes ())
  in
  Labeled_doc.of_document doc

let base_ldoc = fresh_ldoc

let live_nodes ldoc =
  let doc = Labeled_doc.document ldoc in
  let elements = ref [] and texts = ref [] in
  (match doc.Dom.root with
   | None -> ()
   | Some root ->
     Dom.iter_preorder root (fun n ->
         match Dom.kind n with
         | Dom.Element _ -> elements := n :: !elements
         | Dom.Text _ -> texts := n :: !texts
         | Dom.Comment _ | Dom.Pi _ -> ()));
  (List.rev !elements, List.rev !texts)

let start_label ldoc n = (Labeled_doc.label ldoc n).Labeled_doc.start_pos

let fragment_xml prng k =
  match Prng.int prng 3 with
  | 0 -> Printf.sprintf "<patch n=\"%d\">p%d</patch>" k k
  | 1 -> Printf.sprintf "<patch n=\"%d\"><deep><x/></deep></patch>" k
  | _ -> Printf.sprintf "<note id=\"%d\">n%d<sub/></note>" k k

let generate_script config =
  let ldoc = fresh_ldoc config in
  let prng = Prng.create (config.seed lxor 0x0F1E2D3C) in
  let script = ref [] in
  for k = 1 to config.ops do
    let elements, texts = live_nodes ldoc in
    let insert () =
      let parent = Prng.pick prng (Array.of_list elements) in
      Journal.Insert
        { anchor = start_label ldoc parent;
          index = Prng.int prng (Dom.child_count parent + 1);
          xml = fragment_xml prng k }
    in
    let entry =
      match Prng.int prng 10 with
      | 0 | 1 | 2 | 3 | 4 -> insert ()
      | 5 | 6 -> (
          (* Never delete the root: the document must keep one. *)
          match
            List.filter (fun n -> Option.is_some (Dom.parent n)) elements
          with
          | [] -> insert ()
          | deletable ->
            Journal.Delete
              { anchor =
                  start_label ldoc
                    (Prng.pick prng (Array.of_list deletable)) })
      | _ -> (
          match texts with
          | [] -> insert ()
          | texts ->
            (* Text stays non-empty: empty text nodes do not survive
               serialization (see Snapshot.save). *)
            Journal.Set_text
              { anchor =
                  start_label ldoc (Prng.pick prng (Array.of_list texts));
                text = Printf.sprintf "t%d" k })
    in
    Journal.apply_entry ldoc entry;
    script := entry :: !script
  done;
  List.rev !script

(* {1 The oracle}

   Labels and a content checksum after every prefix of the script,
   computed on a pristine in-memory replay.  L-Tree label determinism
   (paper §4.2) is what makes this a bit-exact oracle: recovery replays
   the same entries through the same code, so the k-op prefix must
   reproduce [labels.(k)] exactly, not merely isomorphically. *)

type oracle = { labels : int array array; crcs : int array }

let observe_labels ldoc =
  Array.of_list (List.map snd (Labeled_doc.labeled_events ldoc))

let doc_crc ldoc =
  Checksum.crc32 (Serializer.to_string (Labeled_doc.document ldoc))

let build_oracle config script =
  let ldoc = fresh_ldoc config in
  let labels = Array.make (config.ops + 1) [||] in
  let crcs = Array.make (config.ops + 1) 0 in
  let snap k =
    labels.(k) <- observe_labels ldoc;
    crcs.(k) <- doc_crc ldoc
  in
  snap 0;
  List.iteri
    (fun i entry ->
      Journal.apply_entry ldoc entry;
      snap (i + 1))
    script;
  { labels; crcs }

(* {1 Registry hooks}

   The durability invariants, phrased over a live store so both the
   crash matrix and the self-check harness can register them. *)

let register_invariants reg ~io ~dir ~expected_labels t =
  Invariant.register reg ~name:"recovery.journal-checksum-valid"
    ~depth:Invariant.Cheap (fun () ->
      let scan = Durable_doc.scan_journal io ~dir in
      match scan.Durable_doc.scan_fault with
      | Some f ->
        Invariant.fail ~name:"recovery.journal-checksum-valid"
          "journal not clean: %s"
          (Format.asprintf "%a" Durable_doc.pp_fault f)
      | None ->
        if scan.Durable_doc.dropped <> 0 then
          Invariant.fail ~name:"recovery.journal-checksum-valid"
            "%d unparsed chunks after the valid prefix"
            scan.Durable_doc.dropped);
  Invariant.register reg ~name:"recovery.snapshot-loadable"
    ~depth:Invariant.Deep (fun () ->
      match Durable_doc.newest_valid_snapshot io ~dir with
      | Error faults ->
        Invariant.fail ~name:"recovery.snapshot-loadable"
          "no loadable snapshot generation: %s"
          (String.concat "; "
             (List.map
                (fun f -> Format.asprintf "%a" Durable_doc.pp_fault f)
                faults))
      | Ok (Durable_doc.Previous, _, _, _, _) ->
        Invariant.fail ~name:"recovery.snapshot-loadable"
          "current snapshot unreadable (previous generation would load)"
      | Ok (Durable_doc.Current, _, _, _, _) -> ());
  Invariant.register reg ~name:"recovery.store-matches-oracle-prefix"
    ~depth:Invariant.Deep (fun () ->
      let got = observe_labels (Durable_doc.ldoc t) in
      let want = expected_labels () in
      if not (int_array_equal got want) then
        Invariant.fail ~name:"recovery.store-matches-oracle-prefix"
          "labels diverge from oracle: %d slots vs %d expected%s"
          (Array.length got) (Array.length want)
          (let limit = min (Array.length got) (Array.length want) in
           let rec first i =
             if i >= limit then ""
             else if got.(i) <> want.(i) then
               Printf.sprintf " (first diff at slot %d: %d vs %d)" i got.(i)
                 want.(i)
             else first (i + 1)
           in
           first 0))

(* {1 Query-plan agreement}

   After recovery the relational view must answer queries exactly as a
   from-scratch shred of the oracle prefix does.  Dom ids differ across
   document instances, so results are compared as sorted start-label
   lists — labels are the cross-instance identity. *)

let top_tags ldoc =
  let counts = Hashtbl.create 16 in
  let doc = Labeled_doc.document ldoc in
  (match doc.Dom.root with
   | None -> ()
   | Some root ->
     Dom.iter_preorder root (fun n ->
         match Dom.kind n with
         | Dom.Element tag ->
           Hashtbl.replace counts tag
             (1 + Option.value ~default:0 (Hashtbl.find_opt counts tag))
         | _ -> ()));
  let ranked =
    Hashtbl.fold (fun tag n acc -> (tag, n) :: acc) counts []
    |> List.sort (fun (ta, na) (tb, nb) ->
           if na <> nb then Int.compare nb na else String.compare ta tb)
  in
  match ranked with
  | (a, _) :: (b, _) :: _ -> (a, b)
  | [ (a, _) ] -> (a, a)
  | [] -> ("missing", "missing")

let sorted_result_starts ldoc ids =
  List.filter_map
    (fun id ->
      Option.map
        (fun n -> (Labeled_doc.label ldoc n).Labeled_doc.start_pos)
        (Labeled_doc.node_by_id ldoc id))
    ids
  |> List.sort Int.compare

let query_starts ldoc ~anc ~desc =
  let pager = Pager.create (Counters.create ()) in
  let store = Shredder.shred_label pager ldoc in
  let indexed = Query.label_descendants pager store ~anc ~desc in
  let baseline = Query.label_descendants_baseline pager store ~anc ~desc in
  if not (List.equal Int.equal indexed baseline) then None
  else Some (sorted_result_starts ldoc indexed)

(* {1 The matrix} *)

type outcome =
  | Recovered of {
      durable_seq : int;
      attempted : int;
      synced : int;
      replayed : int;
      dropped : int;
      fault_kinds : string list;
    }
  | Unrecoverable of { fault_kinds : string list }

type cell = {
  point : int;
  mode : Fault.mode;
  outcome : outcome;
  failures : string list;
}

(* The stable cell coordinate: write point x damage mode, e.g. "P37/torn".
   Failure output prints it and [--only] parses it back, so one red cell
   reruns without sweeping the matrix. *)
let point_name ~point ~mode = Printf.sprintf "P%d/%s" point (Fault.mode_name mode)
let cell_name c = point_name ~point:c.point ~mode:c.mode

let parse_cell s =
  match String.index_opt s '/' with
  | None -> None
  | Some slash ->
    let coord = String.sub s 0 slash in
    let mode = String.sub s (slash + 1) (String.length s - slash - 1) in
    if String.length coord < 2 || not (Char.equal coord.[0] 'P') then None
    else (
      match
        ( int_of_string_opt (String.sub coord 1 (String.length coord - 1)),
          Fault.mode_of_name mode )
      with
      | Some point, Some mode when point > 0 -> Some (point, mode)
      | _ -> None)

type summary = {
  config : config;
  total_points : int;
  init_points : int;
  only : (int * Fault.mode) option;
  cells : cell list;
  failed_cells : int;
  fault_counts : (string * int) list;
}

let ok s =
  s.failed_cells = 0
  && List.length s.cells
     = (match s.only with Some _ -> 1 | None -> 3 * s.total_points)

type progress_state = { mutable attempted : int; mutable synced : int }

(* One workload execution against [sim]; [state] tracks the crash-time
   bounds for the durable prefix: at any instant the durable sequence
   number lies in [synced, attempted]. *)
let run_workload config script sim state =
  let io = Fault.sim_io sim in
  let t =
    Durable_doc.initialize ~io ~group_commit:config.group_commit
      ~dir:store_dir (fresh_ldoc config)
  in
  let init_points = Fault.points sim in
  List.iteri
    (fun i entry ->
      state.attempted <- i + 1;
      Durable_doc.apply t entry;
      state.synced <- Durable_doc.last_seq t - Durable_doc.pending t;
      if (i + 1) mod config.checkpoint_every = 0 then begin
        Durable_doc.checkpoint t;
        state.synced <- Durable_doc.last_seq t
      end)
    script;
  Durable_doc.sync t;
  state.synced <- Durable_doc.last_seq t;
  init_points

(* From-scratch query answers for the [durable]-op prefix, memoized:
   many matrix cells land on the same durable prefix.  The cache is
   shared across cells, which may evaluate on different domains, so
   lookups and publication go through [cache_mu]; the (deterministic)
   computation itself runs outside the lock, and the first published
   value wins. *)
let pristine_query config script ~cache_mu query_cache durable =
  let cached =
    Mutex.lock cache_mu;
    let v = Hashtbl.find_opt query_cache durable in
    Mutex.unlock cache_mu;
    v
  in
  match cached with
  | Some v -> v
  | None ->
    let pristine = fresh_ldoc config in
    List.iteri
      (fun i entry -> if i < durable then Journal.apply_entry pristine entry)
      script;
    let anc, desc = top_tags pristine in
    let v = (anc, desc, query_starts pristine ~anc ~desc) in
    Mutex.lock cache_mu;
    let v =
      match Hashtbl.find_opt query_cache durable with
      | Some existing -> existing
      | None ->
        Hashtbl.replace query_cache durable v;
        v
    in
    Mutex.unlock cache_mu;
    v

let verify config ~io ~script ~oracle ~cache_mu ~query_cache ~state ~report t =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let durable = report.Durable_doc.durable_seq in
  if durable < state.synced || durable > state.attempted then
    fail "durable seq %d outside [synced %d, attempted %d]" durable
      state.synced state.attempted;
  if durable < 0 || durable > config.ops then
    fail "durable seq %d outside the script" durable
  else begin
    let ldoc = Durable_doc.ldoc t in
    if not (int_array_equal (observe_labels ldoc) oracle.labels.(durable))
    then
      fail "recovered labels differ from oracle prefix %d" durable;
    if doc_crc ldoc <> oracle.crcs.(durable) then
      fail "recovered content checksum differs from oracle prefix %d" durable;
    (* Full invariant pass over the recovered store. *)
    let reg = Invariant.create () in
    register_invariants reg ~io ~dir:store_dir
      ~expected_labels:(fun () -> oracle.labels.(durable))
      t;
    Invariant.register reg ~name:"recovery.doc-consistent"
      ~depth:Invariant.Deep (fun () -> Labeled_doc.check ldoc);
    List.iter
      (fun f -> fail "invariant %s: %s" f.Invariant.name f.Invariant.detail)
      (Invariant.run_all ~depth:Invariant.Deep reg);
    (* Query plans over the recovered store agree with a from-scratch
       shred of the same prefix. *)
    let anc, desc, want =
      pristine_query config script ~cache_mu query_cache durable
    in
    match (query_starts ldoc ~anc ~desc, want) with
    | None, _ ->
      fail "recovered store: indexed and baseline %s//%s plans disagree" anc
        desc
    | _, None ->
      fail "pristine store: indexed and baseline %s//%s plans disagree" anc
        desc
    | Some got, Some want ->
      if not (List.equal Int.equal got want) then
        fail "%s//%s over recovered store: %d matches vs %d from scratch" anc
          desc (List.length got) (List.length want)
  end;
  List.rev !failures

let run ?pool ?progress ?only config =
  if config.ops < 1 then invalid_arg "Crash_matrix.run: ops must be >= 1";
  (match only with
   | Some (point, _) when point < 1 ->
     invalid_arg "Crash_matrix.run: --only point must be >= 1"
   | Some _ | None -> ());
  let script = generate_script config in
  let oracle = build_oracle config script in
  let query_cache = Hashtbl.create 64 in
  let cache_mu = Mutex.create () in
  (* Profile pass: same workload, no plan — learns the matrix width and
     how many write points initialization itself consumes. *)
  let profile_sim = Fault.create_sim () in
  let init_points =
    run_workload config script profile_sim
      { attempted = 0; synced = 0 }
  in
  let total_points = Fault.points profile_sim in
  (* Cells are independent — each builds its own fault-sim fs, document
     and store — so they fan out across the pool.  The only shared
     mutable pieces are the memoized query cache (mutex above) and the
     progress counter (mutex below); fault tallies are aggregated from
     the cell outcomes afterwards. *)
  let progress_mu = Mutex.create () in
  let done_cells = ref 0 in
  let note_progress () =
    match progress with
    | None -> ()
    | Some f ->
      Mutex.lock progress_mu;
      incr done_cells;
      let d = !done_cells in
      Fun.protect
        ~finally:(fun () -> Mutex.unlock progress_mu)
        (fun () ->
          f ~done_cells:d
            ~total:
              (match only with Some _ -> 1 | None -> 3 * total_points))
  in
  let eval_cell (mode, point) =
    let plan = { Fault.crash_point = point; mode; seed = config.seed } in
    let sim = Fault.create_sim ~plan () in
    let state = { attempted = 0; synced = 0 } in
    let crashed =
      match run_workload config script sim state with
      | (_ : int) -> false
      | exception Fault.Crash _ -> true
    in
    let files = Fault.dump sim in
    let rsim = Fault.create_sim ~files () in
    let io = Fault.sim_io rsim in
    let outcome, failures =
      match
        Durable_doc.recover ~io ~group_commit:config.group_commit
          ~dir:store_dir ()
      with
      | Error faults ->
        let kinds = List.map Durable_doc.fault_kind faults in
        ( Unrecoverable { fault_kinds = kinds },
          (* Losing the whole store is only legitimate before the
             very first checkpoint ever completed. *)
          if state.attempted = 0 && point <= init_points then []
          else
            [ Printf.sprintf
                "unrecoverable after %d applied ops (point %d): %s"
                state.attempted point
                (String.concat ", " kinds) ] )
      | Ok (report, t) ->
        let kinds =
          List.map Durable_doc.fault_kind report.Durable_doc.faults
        in
        let failures =
          verify config ~io ~script ~oracle ~cache_mu ~query_cache ~state
            ~report t
        in
        let failures =
          if crashed then failures
          else "workload did not crash at an in-range point" :: failures
        in
        ( Recovered
            { durable_seq = report.Durable_doc.durable_seq;
              attempted = state.attempted;
              synced = state.synced;
              replayed = report.Durable_doc.entries_replayed;
              dropped = report.Durable_doc.entries_dropped;
              fault_kinds = kinds },
          failures )
    in
    note_progress ();
    { point; mode; outcome; failures }
  in
  let descrs =
    match only with
    | Some (point, mode) ->
      if point > total_points then
        invalid_arg
          (Printf.sprintf
             "Crash_matrix.run: --only point %d beyond the matrix (%d \
              write points)"
             point total_points);
      [| (mode, point) |]
    | None ->
      Array.of_list
        (List.concat_map
           (fun mode -> List.init total_points (fun i -> (mode, i + 1)))
           Fault.all_modes)
  in
  let cells =
    match pool with
    | Some pool -> Array.to_list (Ltree_exec.Pool.map ~chunk:1 pool eval_cell descrs)
    | None -> Array.to_list (Array.map eval_cell descrs)
  in
  let fault_counts = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let kinds =
        match c.outcome with
        | Recovered r -> r.fault_kinds
        | Unrecoverable u -> u.fault_kinds
      in
      List.iter
        (fun k ->
          Hashtbl.replace fault_counts k
            (1 + Option.value ~default:0 (Hashtbl.find_opt fault_counts k)))
        kinds)
    cells;
  { config;
    total_points;
    init_points;
    only;
    cells;
    failed_cells =
      List.length
        (List.filter
           (fun c -> match c.failures with [] -> false | _ :: _ -> true)
           cells);
    fault_counts =
      Hashtbl.fold (fun k n acc -> (k, n) :: acc) fault_counts []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b) }
