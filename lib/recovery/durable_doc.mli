(** A crash-safe store for a labeled document: checksummed write-ahead
    journal + atomically rotated snapshots.

    The design leans on the L-Tree determinism guarantee (paper §4.2):
    the same operation sequence always produces bit-identical labels, so
    a snapshot plus a replayed journal prefix reconstructs the exact
    pre-crash labels — recovery needs no label fixup pass.

    {b On disk} (all under one directory, via a {!Fault.io}):

    - [journal] — header line [ltree-wal 1], then one record per line:
      [E <crc> <seq> <payload>] where [payload] is
      {!Ltree_doc.Journal.entry_to_line} output and [crc] is the CRC-32
      of ["<seq> <payload>"] (covering the sequence number, so a record
      cannot be accepted at the wrong position).
    - [snapshot] / [snapshot.prev] — header ([ltree-durable-snapshot 1],
      [seq], [epoch], [crc], [len] lines) followed by a raw
      {!Ltree_doc.Snapshot.save} payload.  [snapshot.prev] is the
      demoted previous generation, kept as the fallback while the
      current one could still be mid-write.

    {b Checkpoint rotation} is crash-atomic: flush the journal tail,
    write [snapshot.tmp], fsync, demote [snapshot] to [snapshot.prev],
    rename [snapshot.tmp] into place (the commit point), truncate the
    journal.  A crash between any two steps leaves either the old
    snapshot with a complete journal or the new snapshot with a stale
    journal whose records recovery skips by sequence number.

    {b Group commit}: records are buffered in memory and appended +
    fsynced once per [group_commit] operations, trading the durability
    of at most [group_commit - 1] trailing operations for fewer fsyncs.
    A crash loses exactly the unflushed buffer — the durable prefix
    property the crash matrix verifies. *)

(** {1 Recovery diagnostics} *)

(** Everything that can be wrong with the on-disk state, as data.
    Recovery never raises on corrupt input; it reports. *)
type fault =
  | Missing_file of string
  | Empty_journal of string
      (** the journal file exists but holds zero bytes — a crash while
          the very first header byte was being written; distinct from a
          condemned tail (there are no records to condemn), recovery
          re-homes the header and replays nothing *)
  | Bad_header of { file : string; detail : string }
  | Snapshot_corrupt of { file : string; detail : string }
  | Checksum_mismatch of { seq : int }
  | Sequence_gap of { expected : int; got : int }
  | Torn_record of { seq : int }  (** file ends mid-record *)
  | Bad_record of { seq : int; detail : string }
  | Unresolvable_anchor of { seq : int; anchor : int }
      (** the entry is well-formed but its target label is gone *)
  | Apply_failed of { seq : int; detail : string }

(** [fault_kind f] is a stable short tag for aggregation
    (e.g. ["checksum-mismatch"]). *)
val fault_kind : fault -> string

val pp_fault : Format.formatter -> fault -> unit

type snapshot_source = Current | Previous

val source_name : snapshot_source -> string

(** What recovery found and did.  [durable_seq] is the highest
    operation sequence number the recovered document reflects —
    the store's durable prefix. *)
type report = {
  source : snapshot_source;  (** which snapshot generation loaded *)
  base_seq : int;  (** sequence number the snapshot was taken at *)
  epoch : int;  (** the new store incarnation (old epoch + 1) *)
  entries_skipped : int;  (** journal records already in the snapshot *)
  entries_replayed : int;
  entries_dropped : int;  (** condemned tail records, truncated away *)
  faults : fault list;  (** everything wrong that was found, in order *)
  durable_seq : int;
}

val pp_report : Format.formatter -> report -> unit

(** {1 The store} *)

type t

(** [initialize ~io ?group_commit ~dir ldoc] makes [ldoc] durable:
    writes an initial snapshot of it under [dir] (which must exist) and
    an empty journal.  [group_commit] defaults to [1] (every operation
    fsynced).  Raises [Invalid_argument] if [group_commit < 1]. *)
val initialize :
  io:Fault.io -> ?group_commit:int -> dir:string -> Ltree_doc.Labeled_doc.t -> t

(** [recover ~io ?group_commit ~dir ()] rebuilds the store from disk:
    loads the newest valid snapshot ([snapshot], else [snapshot.prev]),
    replays the journal up to the first fault or sequence gap, truncates
    the condemned tail, and bumps the epoch.  Returns [Error faults]
    only when no snapshot generation is loadable; any journal damage is
    survivable and lands in [report.faults].  Never raises on corrupt
    input. *)
val recover :
  io:Fault.io ->
  ?group_commit:int ->
  dir:string ->
  unit ->
  (report * t, fault list) result

val ldoc : t -> Ltree_doc.Labeled_doc.t

(** [last_seq t] is the sequence number of the newest {e applied}
    operation (some of which may still be buffered, not yet durable). *)
val last_seq : t -> int

(** [pending t] is the number of buffered, not-yet-appended records;
    always [< group_commit] between operations. *)
val pending : t -> int

(** [epoch t] is the store incarnation, bumped on every {!recover} —
    the value derived caches compare against to detect restarts. *)
val epoch : t -> int

(** {1 Operations}

    Each applies to the in-memory document first, then journals.  The
    entry payload may raise like {!Ltree_doc.Journal.apply_entry}
    (e.g. [Replay_error] on a dangling anchor); nothing is journaled in
    that case. *)

val apply : t -> Ltree_doc.Journal.entry -> unit
val insert_xml : t -> anchor:int -> index:int -> xml:string -> unit
val delete : t -> anchor:int -> unit
val set_text : t -> anchor:int -> text:string -> unit

(** [sync t] forces the group-commit buffer out: appends and fsyncs all
    pending records.  After [sync], [last_seq t] is durable. *)
val sync : t -> unit

(** [checkpoint t] rotates snapshots per the protocol above and
    truncates the journal.  Implies {!sync}. *)
val checkpoint : t -> unit

(** {1 Inspection} *)

type scan = {
  records : (int * Ltree_doc.Journal.entry) list;
      (** valid contiguous prefix, oldest first *)
  scan_fault : fault option;  (** why scanning stopped, if it did *)
  dropped : int;  (** line-shaped chunks after the fault *)
  valid_bytes : int;  (** length of the trustworthy file prefix *)
}

(** [scan_journal io ~dir] parses and verifies the journal without
    touching any document — the invariant checks build on this. *)
val scan_journal : Fault.io -> dir:string -> scan

(** [newest_valid_snapshot io ~dir] is the snapshot {!recover} would
    start from: [Ok (source, ldoc, base_seq, epoch, faults)] where
    [faults] records a skipped-over corrupt current generation, or
    [Error faults] when neither generation loads. *)
val newest_valid_snapshot :
  Fault.io ->
  dir:string ->
  ( snapshot_source * Ltree_doc.Labeled_doc.t * int * int * fault list,
    fault list )
  result
