(** The deterministic crash matrix: kill the durable store at {e every}
    write point, in every corruption mode, recover, and check the result
    against a bit-exact in-memory oracle.

    One matrix run is: generate a seeded operation script; replay it
    pristine to record the oracle (labels + content checksum after every
    prefix — exact thanks to L-Tree label determinism, paper §4.2); run
    the workload once uninjected to learn the number of write points
    [P]; then for each point [1..P] and each {!Fault.mode}, run the
    workload with that crash scripted, recover from the surviving files,
    and verify:

    - the recovered labels are bit-identical to the oracle at the
      durable prefix, and the serialized content checksum matches;
    - the durable prefix lies in [[synced, attempted]] — group commit
      may lose unflushed tail operations but never synced ones;
    - the full invariant registry passes at [Deep], including the
      durability invariants ({!register_invariants});
    - descendant queries over a re-shredded recovered store agree with
      both their baseline plan and a from-scratch shred of the oracle
      prefix;
    - total loss of the store is accepted only for crashes before the
      very first checkpoint completed.

    Everything — script, injection choices, write points — derives from
    [config.seed], so any failing cell replays exactly. *)

type config = {
  seed : int;
  ops : int;  (** script length *)
  doc_nodes : int;  (** target size of the base document *)
  group_commit : int;
  checkpoint_every : int;  (** ops between snapshot rotations *)
}

val default_config : config
(** [{seed = 42; ops = 200; doc_nodes = 120; group_commit = 4;
    checkpoint_every = 32}] *)

(** {1 Pieces exposed for the harness and tests} *)

(** [base_ldoc config] is the seeded base document every run of the
    matrix starts from — exposed so harnesses layered on the same
    script (the replica-level matrix) can seed their stores
    identically. *)
val base_ldoc : config -> Ltree_doc.Labeled_doc.t

(** [generate_script config] is the seeded operation list; every entry's
    anchor is valid at its position. *)
val generate_script : config -> Ltree_doc.Journal.entry list

type oracle = {
  labels : int array array;
      (** [labels.(k)]: every slot's label after the [k]-op prefix *)
  crcs : int array;  (** serialized-content CRC-32 per prefix *)
}

val build_oracle : config -> Ltree_doc.Journal.entry list -> oracle

(** [register_invariants reg ~io ~dir ~expected_labels t] registers the
    three durability invariants over a live store:
    [recovery.journal-checksum-valid] (the on-disk journal scans clean),
    [recovery.snapshot-loadable] (the current generation loads), and
    [recovery.store-matches-oracle-prefix] (the document's labels equal
    [expected_labels ()]). *)
val register_invariants :
  Ltree_analysis.Invariant.registry ->
  io:Fault.io ->
  dir:string ->
  expected_labels:(unit -> int array) ->
  Durable_doc.t ->
  unit

(** {1 Results} *)

type outcome =
  | Recovered of {
      durable_seq : int;
      attempted : int;  (** ops started before the crash *)
      synced : int;  (** last known-durable seq before the crash *)
      replayed : int;
      dropped : int;
      fault_kinds : string list;  (** damage recovery detected *)
    }
  | Unrecoverable of { fault_kinds : string list }

type cell = {
  point : int;
  mode : Fault.mode;
  outcome : outcome;
  failures : string list;  (** verification failures — empty means pass *)
}

(** [cell_name c] is the cell's stable coordinate, [P<point>/<mode>]
    (e.g. ["P37/torn"]) — printed with every failure and accepted back
    by [--only]. *)
val cell_name : cell -> string

(** [parse_cell s] inverts {!cell_name}: [Some (point, mode)] for
    ["P37/torn"]-shaped strings, [None] otherwise. *)
val parse_cell : string -> (int * Fault.mode) option

type summary = {
  config : config;
  total_points : int;  (** write points in one uninjected run *)
  init_points : int;  (** points consumed by store initialization *)
  only : (int * Fault.mode) option;  (** the single-cell filter, if any *)
  cells : cell list;  (** [3 * total_points] of them ([1] under [only]) *)
  failed_cells : int;
  fault_counts : (string * int) list;
      (** {!Durable_doc.fault_kind} tally across all recoveries *)
}

(** [ok s]: every cell verified and the sweep was complete — the full
    matrix, or exactly the one requested cell under [only]. *)
val ok : summary -> bool

(** [run ?pool ?progress config] executes the full matrix.  With
    [pool], cells fan out across its domains (each cell already owns
    its fault-sim fs, document, and store; results are identical to a
    serial run — cell order is fixed and tallies are aggregated after
    the sweep).  [progress] is called after each cell, serialized
    under a mutex, with a monotone [done_cells]; completion order may
    interleave across modes when parallel (printing is the caller's
    business).  [only] restricts the sweep to one (point, mode) cell —
    the profile pass still runs, so the cell replays against the exact
    same script and write-point numbering as the full matrix.  Raises
    [Invalid_argument] when the requested point is outside [1,
    total_points]. *)
val run :
  ?pool:Ltree_exec.Pool.t ->
  ?progress:(done_cells:int -> total:int -> unit) ->
  ?only:(int * Fault.mode) ->
  config ->
  summary
