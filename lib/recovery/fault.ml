module Prng = Ltree_workload.Prng

(* Monomorphic comparison prelude (lint rule R2). *)
let ( = ) : int -> int -> bool = Stdlib.( = )

exception Crash of { point : int; what : string }

type io = {
  read_file : string -> string option;
  write_file : string -> string -> unit;
  append_file : string -> string -> unit;
  rename_file : src:string -> dst:string -> unit;
  fsync : string -> unit;
  remove_file : string -> unit;
  file_exists : string -> bool;
}

type mode = Clean | Torn | Flip | Short_read | Delay

let mode_name = function
  | Clean -> "clean"
  | Torn -> "torn"
  | Flip -> "flip"
  | Short_read -> "short-read"
  | Delay -> "delay"

let mode_of_name = function
  | "clean" -> Some Clean
  | "torn" -> Some Torn
  | "flip" -> Some Flip
  | "short-read" -> Some Short_read
  | "delay" -> Some Delay
  | _ -> None

let all_modes = [ Clean; Torn; Flip ]
let channel_modes = [ Clean; Torn; Flip; Short_read; Delay ]

type plan = { crash_point : int; mode : mode; seed : int }

(* {1 The simulated disk}

   A write-through in-memory filesystem: every primitive applies
   immediately, [fsync] is a counted ordering point with no further
   effect, and [rename] is atomic.  Each state-changing primitive
   advances the write-point counter; when the counter reaches the
   plan's [crash_point], the primitive misbehaves per [mode] and raises
   {!Crash}, leaving the table holding exactly what "the disk" would
   after power loss. *)

type sim = {
  files : (string, string) Hashtbl.t;
  plan : plan option;
  mutable point : int;
}

let create_sim ?plan ?(files = []) () =
  let t = { files = Hashtbl.create 8; plan; point = 0 } in
  List.iter (fun (path, data) -> Hashtbl.replace t.files path data) files;
  t

let points t = t.point

let dump t =
  Hashtbl.fold (fun path data acc -> (path, data) :: acc) t.files []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let corrupt_file t ~path ~f =
  match Hashtbl.find_opt t.files path with
  | None -> invalid_arg ("Fault.corrupt_file: no such file " ^ path)
  | Some data -> Hashtbl.replace t.files path (f data)

(* [arm t what] advances the write-point counter and returns the plan
   when this primitive is the one that must fail. *)
let arm t =
  t.point <- t.point + 1;
  match t.plan with
  | Some p when p.crash_point = t.point -> Some p
  | Some _ | None -> None

let flip_bit prng data =
  let i = Prng.int prng (String.length data) in
  let bit = Prng.int prng 8 in
  let b = Bytes.of_string data in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
  Bytes.to_string b

(* What actually lands on disk for the payload of the failing write:
   nothing (clean crash at the boundary), a strict prefix (torn sector),
   or the full payload with one seeded bit flipped (medium error caught
   only by the checksum).  All choices derive from (seed, point), so a
   matrix entry replays exactly from its plan. *)
let injected_payload (p : plan) ~point data =
  let len = String.length data in
  if len = 0 then None
  else
    let prng = Prng.create (p.seed lxor (point * 0x9E3779B9)) in
    match p.mode with
    | Clean -> None
    | Torn -> Some (String.sub data 0 (Prng.int prng len))
    | Flip -> Some (flip_bit prng data)
    (* The transport-only kinds: a disk write has no "later" in which the
       remainder could still land (Short_read) and no delivery schedule to
       stretch (Delay), so on the simulated disk both degrade to the
       boundary crash — exactly like rename/fsync degrade Torn/Flip. *)
    | Short_read | Delay -> None

let crash t what =
  (* Feed the flight recorder before unwinding: the injection is the
     event a later bundle dump most needs to show. *)
  if Ltree_obs.Recorder.is_enabled () then
    Ltree_obs.Recorder.note ~kind:"fault"
      ~attrs:[ ("point", string_of_int t.point) ]
      what;
  raise (Crash { point = t.point; what })

let sim_write t path data =
  match arm t with
  | None -> Hashtbl.replace t.files path data
  | Some p ->
    (match injected_payload p ~point:t.point data with
     | None -> ()
     | Some partial -> Hashtbl.replace t.files path partial);
    crash t ("write " ^ path)

let sim_append t path data =
  let prior = Option.value ~default:"" (Hashtbl.find_opt t.files path) in
  match arm t with
  | None -> Hashtbl.replace t.files path (prior ^ data)
  | Some p ->
    (match injected_payload p ~point:t.point data with
     | None -> ()
     | Some partial -> Hashtbl.replace t.files path (prior ^ partial));
    crash t ("append " ^ path)

let sim_rename t ~src ~dst =
  match arm t with
  | Some _ -> crash t (Printf.sprintf "rename %s -> %s" src dst)
  | None -> (
    match Hashtbl.find_opt t.files src with
    | None -> invalid_arg ("Fault.rename: no such file " ^ src)
    | Some data ->
      Hashtbl.remove t.files src;
      Hashtbl.replace t.files dst data)

let sim_fsync t path =
  match arm t with Some _ -> crash t ("fsync " ^ path) | None -> ()

let sim_remove t path =
  match arm t with
  | Some _ -> crash t ("remove " ^ path)
  | None -> Hashtbl.remove t.files path

let sim_io t =
  {
    read_file = (fun path -> Hashtbl.find_opt t.files path);
    write_file = (fun path data -> sim_write t path data);
    append_file = (fun path data -> sim_append t path data);
    rename_file = (fun ~src ~dst -> sim_rename t ~src ~dst);
    fsync = (fun path -> sim_fsync t path);
    remove_file = (fun path -> sim_remove t path);
    file_exists = (fun path -> Hashtbl.mem t.files path);
  }

(* {1 The real filesystem} *)

let real_read path =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  end
  else None

let real_write path data =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc data)

let real_append path data =
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644
      path
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc data)

let real_fsync path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () -> Unix.fsync fd)

let real_io =
  {
    read_file = real_read;
    write_file = real_write;
    append_file = real_append;
    rename_file = (fun ~src ~dst -> Sys.rename src dst);
    fsync = real_fsync;
    remove_file = (fun path -> if Sys.file_exists path then Sys.remove path);
    file_exists = Sys.file_exists;
  }
