(** Deterministic fault injection for the durability layer.

    {!Durable_doc} performs every byte of I/O through an {!io} record,
    so the same store code runs against the real filesystem
    ({!real_io}) or against a simulated disk ({!create_sim}) whose
    failure behavior is scripted.  The simulation is the point: a crash
    test must be able to kill the store at {e every} write boundary, in
    every corruption flavor, and replay any failure exactly — so every
    choice an injection makes (where a torn write tears, which bit
    flips) derives from the plan's seed via {!Ltree_workload.Prng}.

    The simulated disk is write-through: each primitive applies
    immediately and [fsync] is an ordering point with no further
    buffering semantics.  That makes "what survives the crash" exact
    and deterministic — everything fully written before the crash
    point, plus whatever the failing write itself left behind — which
    is the worst case the recovery protocol must already handle
    (a weaker disk only loses {e more} of the un-synced tail, moving
    the recovered prefix earlier; the crash matrix sweeps those shorter
    prefixes as earlier crash points). *)

(** Simulated power loss.  [point] is the write-point counter at the
    failing primitive; [what] names it (e.g. ["append store/journal"]). *)
exception Crash of { point : int; what : string }

(** The I/O surface the durable store consumes.  [read_file] returns
    [None] for missing files; [rename_file] is atomic;
    [write_file]/[append_file] create missing files. *)
type io = {
  read_file : string -> string option;
  write_file : string -> string -> unit;
  append_file : string -> string -> unit;
  rename_file : src:string -> dst:string -> unit;
  fsync : string -> unit;
  remove_file : string -> unit;
  file_exists : string -> bool;
}

(** How a failing I/O primitive misbehaves.  The first three are disk
    damage: [Clean] applies nothing (crash at the boundary), [Torn]
    applies a seeded strict prefix of the payload (torn sector), [Flip]
    applies the full payload with one seeded bit flipped (detectable
    only by checksum).  Primitives without a payload (rename, fsync,
    remove) degrade [Torn]/[Flip] to [Clean].

    [Short_read] and [Delay] extend the same vocabulary to transports
    ({!Ltree_replication.Channel}): [Short_read] delivers a seeded
    strict prefix now and the remainder later as a separate chunk;
    [Delay] delivers the full payload late, letting younger traffic
    overtake it within a bounded window.  On the simulated disk — where
    there is no "later" — both degrade to [Clean]. *)
type mode = Clean | Torn | Flip | Short_read | Delay

val mode_name : mode -> string

(** [mode_of_name s] inverts {!mode_name} ([None] on unknown names) —
    the parser behind [--only CELL] style flags. *)
val mode_of_name : string -> mode option

(** The disk damage modes, [[Clean; Torn; Flip]] — the crash matrices
    sweep exactly these, so existing plans are unchanged by the
    transport kinds. *)
val all_modes : mode list

(** Every kind a {!Ltree_replication.Channel} can inject:
    [all_modes @ [Short_read; Delay]]. *)
val channel_modes : mode list

(** A scripted failure: crash at the [crash_point]-th write primitive,
    misbehaving per [mode], with all injection randomness derived from
    [seed]. *)
type plan = { crash_point : int; mode : mode; seed : int }

(** {1 Simulated disk} *)

type sim

(** [create_sim ?plan ?files ()] is a fresh simulated disk, optionally
    preloaded with [files] (path, contents) and armed with a failure
    [plan].  Without a plan it never fails. *)
val create_sim : ?plan:plan -> ?files:(string * string) list -> unit -> sim

val sim_io : sim -> io

(** [points t] is the number of write primitives executed so far — run
    a workload once uninjected to learn the matrix width. *)
val points : sim -> int

(** [dump t] is every file's surviving contents, sorted by path — what
    a restarted process would find. *)
val dump : sim -> (string * string) list

(** [corrupt_file t ~path ~f] replaces a file's contents with [f
    contents]: external damage (fuzzing) as opposed to crash damage.
    Raises [Invalid_argument] when the file does not exist. *)
val corrupt_file : sim -> path:string -> f:(string -> string) -> unit

(** {1 Real disk}

    The same surface over the actual filesystem, with [fsync] backed by
    [Unix.fsync].  Paths are used as given; parent directories must
    exist. *)
val real_io : io
