(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320), table-driven.
   Native ints are at least 63 bits on every platform we build for, so
   the 32-bit arithmetic is plain [land]/[lxor]/[lsr] with a final
   mask. *)

(* Monomorphic comparison prelude (lint rule R2). *)
let ( = ) : int -> int -> bool = Stdlib.( = )
let ( <> ) : int -> int -> bool = Stdlib.( <> )
let ( >= ) : int -> int -> bool = Stdlib.( >= )
let ( <= ) : int -> int -> bool = Stdlib.( <= )

let mask = 0xFFFFFFFF

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c land mask))

let update crc s =
  let table = Lazy.force table in
  let c = ref (crc lxor mask) in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor mask land mask

let crc32 s = update 0 s

let to_hex c = Printf.sprintf "%08x" (c land mask)

let of_hex s =
  if String.length s <> 8 then None
  else
    match int_of_string_opt ("0x" ^ s) with
    | Some v when v >= 0 && v <= mask -> Some v
    | Some _ | None -> None
