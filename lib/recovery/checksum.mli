(** CRC-32 (IEEE 802.3) over strings — the per-record integrity check of
    the durability layer.

    Why CRC-32 rather than a cryptographic hash: the adversary here is
    the storage stack, not an attacker.  A crash tears a record at a
    byte boundary or flips bits in a sector; CRC-32 detects {e every}
    burst error up to 32 bits and all 1–3 bit errors, costs one table
    lookup per byte, and its 8-hex-digit form keeps journal records
    human-readable.  (Adler-32 would be marginally faster and
    meaningfully weaker on short records — journal entries are often
    under 100 bytes, where Adler's sums stay far from saturating.) *)

(** [crc32 s] is the CRC-32 of [s], in [0, 0xFFFFFFFF]. *)
val crc32 : string -> int

(** [update crc s] extends a running checksum: [update (crc32 a) b =
    crc32 (a ^ b)]. *)
val update : int -> string -> int

(** [to_hex c] is the fixed-width (8 lowercase hex digits) form used in
    durable file headers and records. *)
val to_hex : int -> string

(** [of_hex s] parses {!to_hex} output; [None] on anything else. *)
val of_hex : string -> int option
