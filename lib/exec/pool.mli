(** A fixed-size pool of worker domains with a chunked task queue.

    Domains are spawned once at {!create} and live until {!shutdown}.
    Work is submitted as a half-open index range cut into chunks; the
    submitting domain participates alongside the workers, claiming
    chunks off a shared atomic cursor, so a pool of [size] runs at
    most [size] chunks concurrently and a pool of size 1 degenerates
    to a plain serial loop with no synchronisation beyond two mutex
    acquisitions.

    The pool runs one job at a time.  A [parallel_for] issued from
    inside a running task (re-entrant use) is executed inline in the
    calling domain instead of deadlocking on the job slot.

    Bodies must not touch shared mutable state unless that state is
    itself domain-safe; see DESIGN.md §11 for the threading model. *)

type t

(** Aggregate pool counters since {!create}.  [per_worker.(0)] counts
    chunks run by the submitting domain, slot [k >= 1] by worker [k];
    their imbalance is the "steal" signal also exposed through the
    Prometheus registry as [exec_pool_stolen_per_job] and
    [exec_pool_worker_share]. *)
type stats = {
  size : int;
  parallel_jobs : int;  (** jobs fanned out across domains *)
  serial_jobs : int;  (** jobs run inline: size 1, tiny range, or re-entrant *)
  chunk_tasks : int;  (** chunk tasks executed by parallel jobs *)
  claim_ops : int;
      (** atomic cursor claims issued by parallel jobs.  Each claim
          grabs a span of K chunks (K adaptive on range size), so
          [claim_ops] over [parallel_jobs] — also the
          [exec_pool_claims_per_job] histogram — measures how well the
          batching amortizes cursor contention. *)
  claim_adaptations : int;
      (** claim-size halvings triggered by skew detection: a span whose
          wall time dominates the job's running mean (and exceeds an
          absolute floor) halves the job's chunks-per-claim so the
          remaining hot chunks rebalance across workers.  Also exposed
          as the [exec_pool_claim_adaptations] counter. *)
  per_worker : int array;
}

val create : size:int -> t
(** [create ~size] spawns [size - 1] worker domains ([size >= 1] or
    [Invalid_argument]).  The caller counts as the remaining
    participant. *)

val size : t -> int

val shutdown : t -> unit
(** Stop and join all worker domains.  Idempotent.  Call before the
    process exits: un-joined domains keep the runtime alive. *)

val with_pool : size:int -> (t -> 'a) -> 'a
(** [with_pool ~size f] runs [f] over a fresh pool and guarantees
    {!shutdown}, even if [f] raises. *)

val parallel_for : ?chunk:int -> t -> lo:int -> hi:int -> (int -> int -> unit) -> unit
(** [parallel_for t ~lo ~hi body] runs [body l h] over disjoint
    sub-ranges covering [\[lo, hi)].  [chunk] is the sub-range length
    (default: about a quarter of an even split per participant, so
    stragglers rebalance).  Falls back to one serial [body lo hi] call
    when the pool has size 1 or the range fits in a single chunk.
    If any body raises, the first exception (in completion order) is
    re-raised in the caller after all chunks finish. *)

val map : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f arr] is [Array.map f arr] with elements computed in
    parallel.  Result order matches input order. *)

val stats : t -> stats

val register_telemetry : t -> unit
(** Register pull-based gauges over this pool's live state
    ([exec_pool_pending_chunks], [exec_pool_claim_ops],
    [exec_pool_chunk_tasks]) with the default {!Ltree_obs.Telemetry}
    sampler, for [ltree top].  The closures take the pool mutex at
    sample time; keep the pool alive for as long as the sampler runs. *)

val default_size : unit -> int
(** Pool size from the [LTREE_DOMAINS] environment variable (clamped
    to [1, 64]); 1 — serial — when unset or unparseable. *)
