(* Monomorphic comparison prelude (lint rule R2). *)
let ( = ) : int -> int -> bool = Stdlib.( = )
let ( <> ) : int -> int -> bool = Stdlib.( <> )
let ( < ) : int -> int -> bool = Stdlib.( < )
let ( > ) : int -> int -> bool = Stdlib.( > )
let ( <= ) : int -> int -> bool = Stdlib.( <= )
let max : int -> int -> int = Stdlib.max

let _ = ( > )
let _ = ( <= )

module Column = Ltree_core.Column
module Counters = Ltree_metrics.Counters
module Span = Ltree_obs.Span
module Label_index = Ltree_relstore.Label_index
module Query = Ltree_relstore.Query

(* Parallel structural-join plans over a frozen {!Read_snapshot}.

   Sharding model: every plan cuts the {e output-driving} side of the
   join (the descendant column; the ancestor column for the INL plan)
   into fixed-size chunks and fans the chunks across the pool.  A
   descendant's matches depend only on the shared ancestor input, so a
   chunk can be joined in isolation against the full ancestor entry;
   per-chunk emit buffers are then concatenated in chunk order, which
   reproduces the serial emission order exactly.  Chunk inputs are
   zero-copy {!Column.sub} views of the frozen slice — sharding copies
   nothing.  Each chunk charges comparisons to its own scratch
   [Counters] (no shared mutable state in workers); the caller
   aggregates them after the barrier.  All plans finish with the same
   [sort_uniq] as the serial plans, so results are element-for-element
   identical for every pool size. *)

let join_comparisons =
  Ltree_obs.Registry.histogram ~name:"query_join_comparisons"
    ~help:"Label comparisons per structural join query"
    ~bounds:(Ltree_obs.Histogram.log2_bounds ~start:1. ~count:24)
    ()

(* Chunk length for an input of [len] rows: roughly eight chunks per
   participant so the tail rebalances, but never so small that the
   claim cursor becomes the bottleneck. *)
let chunk_for pool len =
  max 64 ((len + (8 * Pool.size pool) - 1) / (8 * Pool.size pool))

(* Shared placeholder for the [rids] slot of join-input views that
   never read it (the join walks starts/ends only; emits index the
   slice's own id column). *)
let empty_col = Column.create ~capacity:1 ()

(* Entry view of [starts]/[ends] positions [lo, hi) of a slice:
   zero-copy column views sharing the frozen buffers. *)
let sub_entry (s : Read_snapshot.slice) lo hi =
  { Label_index.starts = Column.sub s.s_starts lo (hi - lo);
    ends = Column.sub s.s_ends lo (hi - lo);
    rids = empty_col;
    len = hi - lo;
    stamp = s.s_stamp }

(* Run [body ci lo hi local_counters] over aligned chunks of [0, len),
   then return total comparisons charged.  [ci] is the chunk index:
   distinct per invocation because the pool claims aligned ranges. *)
let chunked pool len ~chunk body =
  let nchunks = (len + chunk - 1) / chunk in
  let comps = Array.make (max 1 nchunks) 0 in
  Pool.parallel_for ~chunk pool ~lo:0 ~hi:len (fun lo hi ->
      let local = Counters.create () in
      body (lo / chunk) lo hi local;
      comps.(lo / chunk) <- Counters.comparisons local);
  Array.fold_left ( + ) 0 comps

let note ?counters comparisons =
  (match counters with
  | Some c -> Counters.add_comparison c comparisons
  | None -> ());
  Ltree_obs.Histogram.observe_int join_comparisons comparisons

let descendants ?counters pool snap ~anc ~desc =
  Read_snapshot.ensure_fresh snap;
  Span.with_ ~name:"par_query.descendants"
    ~attrs:[ ("anc", anc); ("desc", desc) ] (fun () ->
      let a = Read_snapshot.entry_of_slice (Read_snapshot.slice snap anc) in
      let d = Read_snapshot.slice snap desc in
      if d.s_len = 0 || a.Label_index.len = 0 then []
      else begin
        let chunk = chunk_for pool d.s_len in
        let buffers = Array.make ((d.s_len + chunk - 1) / chunk) [] in
        let comparisons =
          chunked pool d.s_len ~chunk (fun ci lo hi local ->
              let out = ref [] in
              let last = ref (-1) in
              Query.array_join local a (sub_entry d lo hi)
                ~emit:(fun _ dpos ->
                  if dpos <> !last then begin
                    last := dpos;
                    out := Column.get d.s_ids (lo + dpos) :: !out
                  end);
              buffers.(ci) <- !out)
        in
        note ?counters comparisons;
        List.sort_uniq Int.compare (List.concat (Array.to_list buffers))
      end)

let children ?counters pool snap ~parent ~child =
  Read_snapshot.ensure_fresh snap;
  Span.with_ ~name:"par_query.children"
    ~attrs:[ ("parent", parent); ("child", child) ] (fun () ->
      let pa = Read_snapshot.slice snap parent in
      let a = Read_snapshot.entry_of_slice pa in
      let d = Read_snapshot.slice snap child in
      if d.s_len = 0 || pa.s_len = 0 then []
      else begin
        let chunk = chunk_for pool d.s_len in
        let buffers = Array.make ((d.s_len + chunk - 1) / chunk) [] in
        let comparisons =
          chunked pool d.s_len ~chunk (fun ci lo hi local ->
              let out = ref [] in
              Query.array_join local a (sub_entry d lo hi)
                ~emit:(fun apos dpos ->
                  if
                    Column.get d.s_levels (lo + dpos)
                    = Column.get pa.s_levels apos + 1
                  then out := Column.get d.s_ids (lo + dpos) :: !out);
              buffers.(ci) <- !out)
        in
        note ?counters comparisons;
        List.sort_uniq Int.compare (List.concat (Array.to_list buffers))
      end)

let descendants_inl ?counters pool snap ~anc ~desc =
  Read_snapshot.ensure_fresh snap;
  Span.with_ ~name:"par_query.descendants_inl"
    ~attrs:[ ("anc", anc); ("desc", desc) ] (fun () ->
      let a = Read_snapshot.slice snap anc in
      let d = Read_snapshot.entry_of_slice (Read_snapshot.slice snap desc) in
      let dids = (Read_snapshot.slice snap desc).s_ids in
      if a.s_len = 0 || d.Label_index.len = 0 then []
      else begin
        let chunk = chunk_for pool a.s_len in
        let buffers = Array.make ((a.s_len + chunk - 1) / chunk) [] in
        let comparisons =
          chunked pool a.s_len ~chunk (fun ci lo hi local ->
              let out = ref [] in
              for apos = lo to hi - 1 do
                let astart = Column.get a.s_starts apos
                and aend = Column.get a.s_ends apos in
                let i = ref (Label_index.upper_bound local d astart) in
                let scanning = ref true in
                while !scanning && !i < d.Label_index.len do
                  Counters.add_comparison local 1;
                  if Column.get d.Label_index.starts !i < aend then begin
                    out := Column.get dids !i :: !out;
                    incr i
                  end
                  else scanning := false
                done
              done;
              buffers.(ci) <- !out)
        in
        note ?counters comparisons;
        List.sort_uniq Int.compare (List.concat (Array.to_list buffers))
      end)

(* One path step: join the accumulated entry against the next tag's
   slice, producing the matched sub-slice as a fresh entry whose [rids]
   carry Dom ids (adjacent duplicates collapsed, ascending starts) —
   the parallel twin of [Query.join_to_entry]. *)
let step_entry pool (acc : Label_index.entry) (d : Read_snapshot.slice)
    comparisons_acc =
  if d.s_len = 0 || acc.Label_index.len = 0 then
    { Label_index.starts = empty_col;
      ends = empty_col;
      rids = empty_col;
      len = 0;
      stamp = -1 }
  else begin
    let chunk = chunk_for pool d.s_len in
    let nchunks = (d.s_len + chunk - 1) / chunk in
    let buffers = Array.make nchunks [] in
    let lens = Array.make nchunks 0 in
    let comparisons =
      chunked pool d.s_len ~chunk (fun ci lo hi local ->
          let out = ref [] in
          let n = ref 0 in
          let last = ref (-1) in
          Query.array_join local acc (sub_entry d lo hi)
            ~emit:(fun _ dpos ->
              if dpos <> !last then begin
                last := dpos;
                out := (lo + dpos) :: !out;
                incr n
              end);
          buffers.(ci) <- !out;
          lens.(ci) <- !n)
    in
    comparisons_acc := !comparisons_acc + comparisons;
    let total = Array.fold_left ( + ) 0 lens in
    let starts = Column.create ~capacity:(max 1 total) ()
    and ends = Column.create ~capacity:(max 1 total) ()
    and rids = Column.create ~capacity:(max 1 total) () in
    (* Fill back-to-front per chunk: each buffer is reversed. *)
    let pos = ref total in
    for ci = nchunks - 1 downto 0 do
      List.iter
        (fun dpos ->
          decr pos;
          Column.set starts !pos (Column.get d.s_starts dpos);
          Column.set ends !pos (Column.get d.s_ends dpos);
          Column.set rids !pos (Column.get d.s_ids dpos))
        buffers.(ci)
    done;
    Column.set_len starts total;
    Column.set_len ends total;
    Column.set_len rids total;
    { Label_index.starts; ends; rids; len = total; stamp = -1 }
  end

let path ?counters pool snap tags =
  match tags with
  | [] -> []
  | first :: rest ->
    Read_snapshot.ensure_fresh snap;
    Span.with_ ~name:"par_query.path"
      ~attrs:[ ("steps", string_of_int (1 + List.length rest)) ] (fun () ->
        let comparisons = ref 0 in
        let final =
          List.fold_left
            (fun acc tag ->
              step_entry pool acc (Read_snapshot.slice snap tag) comparisons)
            (Read_snapshot.entry_of_slice (Read_snapshot.slice snap first))
            rest
        in
        note ?counters !comparisons;
        let out = ref [] in
        for i = final.Label_index.len - 1 downto 0 do
          out := Column.get final.Label_index.rids i :: !out
        done;
        List.sort_uniq Int.compare !out)

(* Batched execution: one task per query, each run serially inside its
   worker — the shape benchmarked by BENCH_parallel.json. *)
let descendants_batch ?counters pool snap queries =
  Read_snapshot.ensure_fresh snap;
  Span.with_ ~name:"par_query.descendants_batch"
    ~attrs:[ ("queries", string_of_int (Array.length queries)) ] (fun () ->
      let comps = Array.make (max 1 (Array.length queries)) 0 in
      let results =
        Pool.map ~chunk:1 pool
          (fun (i, (anc, desc)) ->
            let local = Counters.create () in
            let a = Read_snapshot.entry_of_slice (Read_snapshot.slice snap anc) in
            let d = Read_snapshot.slice snap desc in
            let out = ref [] in
            let last = ref (-1) in
            Query.array_join local a
              (Read_snapshot.entry_of_slice d)
              ~emit:(fun _ dpos ->
                if dpos <> !last then begin
                  last := dpos;
                  out := Column.get d.s_ids dpos :: !out
                end);
            comps.(i) <- Counters.comparisons local;
            List.sort_uniq Int.compare !out)
          (Array.mapi (fun i q -> (i, q)) queries)
      in
      note ?counters (Array.fold_left ( + ) 0 comps);
      results)
