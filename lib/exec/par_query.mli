(** Parallel structural-join plans over a frozen {!Read_snapshot}.

    Each plan shards the output-driving join input into fixed chunks,
    fans the chunks across a {!Pool}, and concatenates per-chunk emit
    buffers in chunk order, so results are element-for-element
    identical to the serial plans in {!Ltree_relstore.Query} for every
    pool size (including 1).  Workers touch only the immutable
    snapshot and per-chunk scratch counters.

    Every plan calls {!Read_snapshot.ensure_fresh} first and therefore
    raises {!Read_snapshot.Stale} rather than answer from outdated
    arrays.  Comparisons are aggregated into [?counters] (when given)
    and into the shared [query_join_comparisons] histogram. *)

(** [descendants pool snap ~anc ~desc] is the parallel [anc//desc]
    plan; sorted Dom ids, equal to
    [Query.label_descendants]. *)
val descendants :
  ?counters:Ltree_metrics.Counters.t ->
  Pool.t -> Read_snapshot.t -> anc:string -> desc:string -> int list

(** Parallel [parent/child] (level-filtered join); equal to
    [Query.label_children]. *)
val children :
  ?counters:Ltree_metrics.Counters.t ->
  Pool.t -> Read_snapshot.t -> parent:string -> child:string -> int list

(** Parallel index-nested-loop [anc//desc], sharded by ancestors;
    equal to [Query.label_descendants_inl]. *)
val descendants_inl :
  ?counters:Ltree_metrics.Counters.t ->
  Pool.t -> Read_snapshot.t -> anc:string -> desc:string -> int list

(** Parallel multi-step descendant path [t1//t2//…//tk]; equal to
    [Query.label_path]. *)
val path :
  ?counters:Ltree_metrics.Counters.t ->
  Pool.t -> Read_snapshot.t -> string list -> int list

(** [descendants_batch pool snap queries] fans whole queries across the
    pool (one task per query, each joined serially in its worker) and
    returns per-query sorted Dom ids, index-aligned with [queries]. *)
val descendants_batch :
  ?counters:Ltree_metrics.Counters.t ->
  Pool.t -> Read_snapshot.t -> (string * string) array -> int list array
