(** Immutable read snapshots of the label store.

    A snapshot is a frozen structure-of-arrays copy of the incremental
    per-tag label index ({!Ltree_relstore.Label_index}): for every tag,
    the sorted [(start, end)] interval columns plus each row's Dom id
    and tree level, stored as untagged-int {!Ltree_core.Column}s.
    Worker domains share it read-only — parallel query plans never
    touch the pager, the row tables, or the live index.

    Freshness contract: a snapshot is stamped with the labeled
    document's version ({!Ltree_doc.Labeled_doc.version}, i.e. the
    L-Tree mutation stamp) and the index generation at freeze time.
    Once either stamp moves — any tree mutation, or any
    {!Ltree_relstore.Label_sync.flush} that notes a change —
    {!ensure_fresh} refuses the snapshot with {!Stale} and {!refresh}
    rebuilds it from the live store.  A refresh reuses the slice of
    every tag whose index entry kept its maintenance stamp, so only the
    tags actually touched since the freeze are re-copied. *)

type t

(** One tag's frozen rows, parallel columns over [0 .. s_len):
    [s_starts] strictly increasing.  [s_stamp] is the index entry's
    maintenance stamp at freeze time — the reuse key for {!refresh}. *)
type slice = {
  s_starts : Ltree_core.Column.t;
  s_ends : Ltree_core.Column.t;
  s_ids : Ltree_core.Column.t;  (** Dom node ids *)
  s_levels : Ltree_core.Column.t;  (** tree depth, root = 0 *)
  s_len : int;
  s_stamp : int;
}

(** Why a snapshot was refused: the stamps it froze against both live
    values at refusal time.  A moved [version] means the tree mutated; a
    moved [generation] means the per-tag index was rebuilt or repaired —
    the payload distinguishes the two so handlers (and the recorder
    event [snapshot_stale]) need not re-derive which side diverged. *)
type staleness = {
  stale_snap_version : int;
  stale_snap_generation : int;
  stale_live_version : int;
  stale_live_generation : int;
}

exception Stale of staleness

(** Render a {!staleness} the way the old string payload read. *)
val staleness_to_string : staleness -> string

(** [of_store ?prev pager store doc] freezes every tag currently in the
    store.  With [?prev], slices of tags whose index entry is unchanged
    since [prev]'s freeze (same maintenance stamp) are reused
    physically instead of re-copied.  Must be called from one domain
    with no concurrent writers (it may repair the live index on the
    way). *)
val of_store :
  ?prev:t ->
  Ltree_relstore.Pager.t ->
  Ltree_relstore.Shredder.label_store ->
  Ltree_doc.Labeled_doc.t ->
  t

(** Document version the snapshot was frozen at. *)
val version : t -> int

(** Index generation the snapshot was frozen at. *)
val generation : t -> int

(** Tags with a (possibly empty) slice, sorted. *)
val tags : t -> string list

(** [slice t tag] is the tag's frozen slice; an empty slice for tags
    the snapshot has never seen. *)
val slice : t -> string -> slice

(** An entry view of a slice for {!Ltree_relstore.Query.array_join}.
    The entry's [rids] field carries {e Dom ids}; treat it as
    immutable. *)
val entry_of_slice : slice -> Ltree_relstore.Label_index.entry

val is_fresh : t -> bool

(** [ensure_fresh t] raises {!Stale} — carrying both frozen and live
    stamps — if the live document version or index generation moved
    since the freeze.  When the flight recorder is enabled, the refusal
    is also noted as an [exec]/[snapshot_stale] event with the same
    four stamps. *)
val ensure_fresh : t -> unit

(** [refresh t] is [t] if still fresh, else a new snapshot of the same
    source store (reusing unchanged tags' slices). *)
val refresh : t -> t
