(* Monomorphic comparison prelude (lint rule R2). *)
let ( = ) : int -> int -> bool = Stdlib.( = )
let ( < ) : int -> int -> bool = Stdlib.( < )
let ( > ) : int -> int -> bool = Stdlib.( > )
let ( <= ) : int -> int -> bool = Stdlib.( <= )
let ( >= ) : int -> int -> bool = Stdlib.( >= )
let min : int -> int -> int = Stdlib.min
let max : int -> int -> int = Stdlib.max

let _ = ( < )
let _ = ( <= )

(* A fixed-size domain pool with a single-slot chunked job queue.

   The pool runs one job at a time.  A job is a half-open index range
   [lo, hi) cut into fixed-size chunks; participants (the submitting
   domain plus every worker domain) claim chunks with a single
   [Atomic.fetch_and_add] on a shared cursor, so no chunk is ever run
   twice and load balancing falls out of claim order.  The submitting
   domain always participates, which keeps the serial fallback and the
   parallel path on the same code shape and means a pool of size 1
   never blocks on a condition variable. *)

type job = {
  j_id : int;
  j_hi : int;
  j_chunk : int;
  j_k : int Atomic.t;        (* chunks claimed per cursor bump — adaptive *)
  j_next : int Atomic.t;     (* next un-claimed span start *)
  j_pending : int Atomic.t;  (* chunks not yet finished *)
  j_claims : int Atomic.t;   (* claim (fetch_and_add) operations issued *)
  j_adapts : int Atomic.t;   (* times the claim size was halved (skew) *)
  j_span_us : int Atomic.t;  (* wall time of completed spans, microseconds *)
  j_spans : int Atomic.t;    (* completed spans *)
  j_body : int -> int -> unit;
  mutable j_failure : exn option;  (* first failure wins; guarded by [mu] *)
}

type t = {
  pool_size : int;
  mu : Mutex.t;
  work : Condition.t;      (* workers wait here for a fresh job *)
  finished : Condition.t;  (* the submitter waits here for completion *)
  mutable current : job option;
  mutable next_job_id : int;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  (* Stats, guarded by [mu] except [worker_tasks] whose slot [k] is
     only ever written by participant [k]. *)
  mutable jobs : int;
  mutable inline_jobs : int;
  mutable tasks : int;
  mutable claims : int;
  mutable adapts : int;
  worker_tasks : int array;  (* per participant; slot 0 = submitter *)
}

type stats = {
  size : int;
  parallel_jobs : int;
  serial_jobs : int;
  chunk_tasks : int;
  claim_ops : int;
  claim_adaptations : int;
  per_worker : int array;
}

(* A span must run this long (µs) before it may count as "dominating":
   the skew detector compares span wall times, and without an absolute
   floor the sub-µs jitter of trivially fast spans (mean rounding to 0)
   would read as domination and thrash the claim size. *)
let adapt_floor_us = 1000

(* Halve the job's claim size once: a participant discovered that its
   span dominates wall time, so future claims should be finer-grained
   and the tail can rebalance across the other participants. *)
let halve_claim job =
  let cur = Atomic.get job.j_k in
  if cur > 1 && Atomic.compare_and_set job.j_k cur (max 1 (cur / 2)) then
    Atomic.incr job.j_adapts

(* [elapsed] µs into a span: does it dominate the completed spans'
   mean?  Only meaningful once at least one other span has finished. *)
let span_dominates job elapsed_us =
  elapsed_us > adapt_floor_us
  &&
  let spans = Atomic.get job.j_spans in
  spans > 0 && elapsed_us > 2 * (Atomic.get job.j_span_us / spans)

(* Run chunks of [job] until the claim cursor is exhausted.  Called by
   the submitter (slot 0) and by any worker that saw the job.  Each
   cursor bump claims a span of [j_k * j_chunk] indices — K whole
   chunks — and the span is then run chunk by chunk on aligned
   boundaries, so bodies still see exactly the chunk grid the submitter
   described while paying 1/K of the atomic traffic.

   K is adaptive: spans are wall-timed (only while K > 1), and a
   participant whose span dominates the completed-span mean halves the
   shared K — the fixed nchunks/(4·pool) batching regresses skewed
   workloads where one chunk holds all the hot rows, so once skew shows
   up the remaining range is claimed at finer grain.  The halving is
   checked between chunks (mid-span, so the straggler shrinks claims
   while it is still running) and once more at span end. *)
let run_chunks t job ~slot =
  let rec loop () =
    let k = Atomic.get job.j_k in
    let claim = k * job.j_chunk in
    let start = Atomic.fetch_and_add job.j_next claim in
    if start < job.j_hi then begin
      Atomic.incr job.j_claims;
      let span_stop = min job.j_hi (start + claim) in
      let timed = k > 1 in
      let t0 = if timed then Unix.gettimeofday () else 0.0 in
      let halved = ref false in
      let pos = ref start in
      let ran = ref 0 in
      while !pos < span_stop do
        let stop = min job.j_hi (!pos + job.j_chunk) in
        (match job.j_failure with
        | Some _ -> ()  (* racy peek; worst case we run a doomed chunk *)
        | None -> (
          try job.j_body !pos stop
          with e ->
            Mutex.lock t.mu;
            (match job.j_failure with
            | None -> job.j_failure <- Some e
            | Some _ -> ());
            Mutex.unlock t.mu));
        t.worker_tasks.(slot) <- t.worker_tasks.(slot) + 1;
        incr ran;
        pos := !pos + job.j_chunk;
        if timed && not !halved && !pos < span_stop then begin
          let us =
            int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)
          in
          if span_dominates job us then begin
            halve_claim job;
            halved := true
          end
        end
      done;
      if timed then begin
        let us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
        if (not !halved) && span_dominates job us then halve_claim job;
        ignore (Atomic.fetch_and_add job.j_span_us us);
        Atomic.incr job.j_spans
      end;
      let left = Atomic.fetch_and_add job.j_pending (- !ran) - !ran in
      if left = 0 then begin
        Mutex.lock t.mu;
        (match t.current with
        | Some j when j.j_id = job.j_id -> t.current <- None
        | _ -> ());
        Condition.broadcast t.finished;
        Mutex.unlock t.mu
      end;
      loop ()
    end
  in
  loop ()

let worker t ~slot =
  let last = ref (-1) in
  Mutex.lock t.mu;
  let rec loop () =
    if t.stopping then Mutex.unlock t.mu
    else
      match t.current with
      | Some job when not (job.j_id = !last) ->
        last := job.j_id;
        Mutex.unlock t.mu;
        run_chunks t job ~slot;
        Mutex.lock t.mu;
        loop ()
      | _ ->
        Condition.wait t.work t.mu;
        loop ()
  in
  loop ()

let create ~size =
  if size < 1 then invalid_arg "Pool.create: size must be >= 1";
  let t =
    { pool_size = size;
      mu = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      current = None;
      next_job_id = 0;
      stopping = false;
      domains = [];
      jobs = 0;
      inline_jobs = 0;
      tasks = 0;
      claims = 0;
      adapts = 0;
      worker_tasks = Array.make size 0 }
  in
  t.domains <-
    List.init (size - 1) (fun i -> Domain.spawn (fun () -> worker t ~slot:(i + 1)));
  if Ltree_obs.Recorder.is_enabled () then
    Ltree_obs.Recorder.note ~kind:"exec"
      ~attrs:[ ("size", string_of_int size) ]
      "pool_created";
  t

let size t = t.pool_size

let shutdown t =
  Mutex.lock t.mu;
  t.stopping <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mu;
  List.iter Domain.join t.domains;
  t.domains <- [];
  if Ltree_obs.Recorder.is_enabled () then
    Ltree_obs.Recorder.note ~kind:"exec"
      ~attrs:[ ("jobs", string_of_int t.jobs) ]
      "pool_shutdown"

let with_pool ~size f =
  let t = create ~size in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let stats t =
  Mutex.lock t.mu;
  let s =
    { size = t.pool_size;
      parallel_jobs = t.jobs;
      serial_jobs = t.inline_jobs;
      chunk_tasks = t.tasks;
      claim_ops = t.claims;
      claim_adaptations = t.adapts;
      per_worker = Array.copy t.worker_tasks }
  in
  Mutex.unlock t.mu;
  s

(* Pool health as Prometheus histograms in the shared registry.  Only
   the submitting domain observes, once per parallel job. *)
let tasks_hist () =
  Ltree_obs.Registry.histogram ~name:"exec_pool_tasks_per_job"
    ~help:"chunk tasks per parallel job"
    ~bounds:(Ltree_obs.Histogram.log2_bounds ~start:1. ~count:12)
    ()

let stolen_hist () =
  Ltree_obs.Registry.histogram ~name:"exec_pool_stolen_per_job"
    ~help:"chunk tasks claimed by worker domains (not the submitter) per job"
    ~bounds:(Ltree_obs.Histogram.log2_bounds ~start:1. ~count:12)
    ()

let share_hist () =
  Ltree_obs.Registry.histogram ~name:"exec_pool_worker_share"
    ~help:"fraction of a job's chunk tasks run by worker domains"
    ~bounds:(Ltree_obs.Histogram.linear_bounds ~start:0.1 ~step:0.1 ~count:10)
    ()

let claims_hist () =
  Ltree_obs.Registry.histogram ~name:"exec_pool_claims_per_job"
    ~help:"atomic claim operations on the chunk cursor per parallel job"
    ~bounds:(Ltree_obs.Histogram.log2_bounds ~start:1. ~count:12)
    ()

let adapts_counter () =
  Ltree_obs.Registry.counter ~name:"exec_pool_claim_adaptations"
    ~help:"claim-size halvings triggered by a wall-time-dominating span"
    ()

let note_job t ~nchunks ~caller_chunks ~claims ~adapts =
  Mutex.lock t.mu;
  t.jobs <- t.jobs + 1;
  t.tasks <- t.tasks + nchunks;
  t.claims <- t.claims + claims;
  t.adapts <- t.adapts + adapts;
  Mutex.unlock t.mu;
  let stolen = nchunks - caller_chunks in
  Ltree_obs.Histogram.observe_int (tasks_hist ()) nchunks;
  Ltree_obs.Histogram.observe_int (stolen_hist ()) stolen;
  Ltree_obs.Histogram.observe (share_hist ())
    (float_of_int stolen /. float_of_int nchunks);
  Ltree_obs.Histogram.observe_int (claims_hist ()) claims;
  Ltree_obs.Registry.counter_add (adapts_counter ()) adapts

let serial_run t body lo hi =
  Mutex.lock t.mu;
  t.inline_jobs <- t.inline_jobs + 1;
  Mutex.unlock t.mu;
  body lo hi

let parallel_for ?chunk t ~lo ~hi body =
  let n = hi - lo in
  if n > 0 then begin
    let chunk =
      match chunk with
      | Some c when c > 0 -> c
      | _ ->
        (* about four chunks per participant, so stragglers rebalance *)
        max 1 ((n + (4 * t.pool_size) - 1) / (4 * t.pool_size))
    in
    if t.pool_size = 1 || n <= chunk then serial_run t body lo hi
    else begin
      Mutex.lock t.mu;
      if t.stopping then begin
        Mutex.unlock t.mu;
        serial_run t body lo hi
      end
      else
        match t.current with
        | Some _ ->
          (* Re-entrant submission from inside a running task: run
             inline rather than deadlock on the single job slot. *)
          Mutex.unlock t.mu;
          serial_run t body lo hi
        | None ->
          let nchunks = (n + chunk - 1) / chunk in
          (* Claim K chunks per atomic bump — enough spans for about
             four claims per participant so the tail still rebalances,
             while big ranges stop hammering the cursor. *)
          let k = max 1 (nchunks / (4 * t.pool_size)) in
          let job =
            { j_id = t.next_job_id;
              j_hi = hi;
              j_chunk = chunk;
              j_k = Atomic.make k;
              j_next = Atomic.make lo;
              j_pending = Atomic.make nchunks;
              j_claims = Atomic.make 0;
              j_adapts = Atomic.make 0;
              j_span_us = Atomic.make 0;
              j_spans = Atomic.make 0;
              j_body = body;
              j_failure = None }
          in
          t.next_job_id <- t.next_job_id + 1;
          t.current <- Some job;
          Condition.broadcast t.work;
          Mutex.unlock t.mu;
          let caller_before = t.worker_tasks.(0) in
          run_chunks t job ~slot:0;
          Mutex.lock t.mu;
          while Atomic.get job.j_pending > 0 do
            Condition.wait t.finished t.mu
          done;
          Mutex.unlock t.mu;
          note_job t ~nchunks
            ~caller_chunks:(t.worker_tasks.(0) - caller_before)
            ~claims:(Atomic.get job.j_claims)
            ~adapts:(Atomic.get job.j_adapts);
          (match job.j_failure with Some e -> raise e | None -> ())
    end
  end

let map ?chunk t f arr =
  let n = Array.length arr in
  let out = Array.make n None in
  parallel_for ?chunk t ~lo:0 ~hi:n (fun lo hi ->
      for i = lo to hi - 1 do
        out.(i) <- Some (f arr.(i))
      done);
  Array.map (function Some v -> v | None -> assert false) out

(* Pull-based gauges over the pool's live state for the periodic
   sampler ([ltree top]).  The closures run at sample time, outside the
   sampler's lock, and take the pool mutex themselves. *)
let register_telemetry t =
  let under_mu f =
    Mutex.lock t.mu;
    let v = f () in
    Mutex.unlock t.mu;
    v
  in
  Ltree_obs.Telemetry.register ~name:"exec_pool_pending_chunks"
    ~help:"chunk tasks of the in-flight job not yet finished" (fun () ->
      under_mu (fun () ->
          match t.current with
          | Some j -> float_of_int (max 0 (Atomic.get j.j_pending))
          | None -> 0.));
  Ltree_obs.Telemetry.register ~name:"exec_pool_claim_ops"
    ~help:"cumulative atomic claim operations on the chunk cursor"
    (fun () -> under_mu (fun () -> float_of_int t.claims));
  Ltree_obs.Telemetry.register ~name:"exec_pool_chunk_tasks"
    ~help:"cumulative chunk tasks run" (fun () ->
      under_mu (fun () -> float_of_int t.tasks))

let default_size () =
  match Sys.getenv_opt "LTREE_DOMAINS" with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some k when k >= 1 -> min k 64
    | Some _ | None -> 1)
