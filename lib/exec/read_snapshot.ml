(* Monomorphic comparison prelude (lint rule R2). *)
let ( = ) : int -> int -> bool = Stdlib.( = )
let ( <> ) : int -> int -> bool = Stdlib.( <> )
let ( < ) : int -> int -> bool = Stdlib.( < )
let max : int -> int -> int = Stdlib.max

let _ = ( < )

module Column = Ltree_core.Column
module Label_index = Ltree_relstore.Label_index
module Query = Ltree_relstore.Query
module Rel_table = Ltree_relstore.Rel_table
module Shredder = Ltree_relstore.Shredder

(* A frozen structure-of-arrays view of the label store: per tag, the
   sorted (start, end) interval columns plus the Dom id and tree level
   of every row, all copied out of the live index at freeze time.
   Workers share the snapshot read-only; nothing here aliases a mutable
   structure, so no query ever touches the pager, the row tables or the
   repairable index columns. *)

type slice = {
  s_starts : Column.t;
  s_ends : Column.t;
  s_ids : Column.t;
  s_levels : Column.t;
  s_len : int;
  s_stamp : int;
}

type source = {
  src_pager : Ltree_relstore.Pager.t;
  src_store : Shredder.label_store;
  src_doc : Ltree_doc.Labeled_doc.t;
}

type t = {
  slices : (string, slice) Hashtbl.t;
  snap_version : int;
  snap_generation : int;
  src : source;
}

(* The full staleness evidence: both stamps the snapshot froze and both
   live values, so a handler (or the flight recorder) can tell a tree
   mutation (version moved) from an index rebuild/repair (generation
   moved) without re-deriving either. *)
type staleness = {
  stale_snap_version : int;
  stale_snap_generation : int;
  stale_live_version : int;
  stale_live_generation : int;
}

exception Stale of staleness

let staleness_to_string s =
  Printf.sprintf
    "snapshot stamped version=%d generation=%d but live is version=%d \
     generation=%d"
    s.stale_snap_version s.stale_snap_generation s.stale_live_version
    s.stale_live_generation

let empty_slice =
  { s_starts = Column.create ~capacity:1 ();
    s_ends = Column.create ~capacity:1 ();
    s_ids = Column.create ~capacity:1 ();
    s_levels = Column.create ~capacity:1 ();
    s_len = 0;
    s_stamp = -1 }

(* Freeze one tag.  When the previous snapshot holds a slice whose
   stamp matches the entry's (the entry was not rebuilt or repaired in
   between), the old slice record is reused as-is — a refresh after a
   localized batch of updates re-copies only the touched tags. *)
let freeze_tag ?prev pager store tag =
  let e = Query.tag_entry pager store tag in
  let n = e.Label_index.len in
  if n = 0 then empty_slice
  else begin
    let reusable =
      match prev with
      | None -> None
      | Some p -> (
          match Hashtbl.find_opt p.slices tag with
          | Some s when s.s_stamp = e.Label_index.stamp && s.s_len = n ->
            Some s
          | Some _ | None -> None)
    in
    match reusable with
    | Some s -> s
    | None ->
      let ids = Column.create ~capacity:n ()
      and levels = Column.create ~capacity:n () in
      for i = 0 to n - 1 do
        let row =
          Rel_table.get store.Shredder.label_table
            (Column.get_checked e.Label_index.rids i)
        in
        Column.push ids row.Shredder.l_id;
        Column.push levels row.Shredder.l_level
      done;
      { s_starts = Column.copy_sub e.Label_index.starts 0 n;
        s_ends = Column.copy_sub e.Label_index.ends 0 n;
        s_ids = ids;
        s_levels = levels;
        s_len = n;
        s_stamp = e.Label_index.stamp }
  end

let of_store ?prev pager store doc =
  let tag_list =
    List.sort_uniq String.compare
      (Hashtbl.fold
         (fun tag _ acc -> tag :: acc)
         store.Shredder.label_by_tag [])
  in
  let slices = Hashtbl.create (max 16 (List.length tag_list)) in
  List.iter
    (fun tag -> Hashtbl.replace slices tag (freeze_tag ?prev pager store tag))
    tag_list;
  (* Stamp after freezing: [tag_entry] may repair the index (bumping
     nothing — repairs consume, not produce, change notes), so the
     stamps taken here describe exactly the state the slices mirror. *)
  { slices;
    snap_version = Ltree_doc.Labeled_doc.version doc;
    snap_generation = Label_index.generation store.Shredder.label_index;
    src = { src_pager = pager; src_store = store; src_doc = doc } }

let version t = t.snap_version
let generation t = t.snap_generation

let tags t =
  List.sort String.compare
    (Hashtbl.fold (fun tag _ acc -> tag :: acc) t.slices [])

(* [Hashtbl.find] instead of [find_opt]: plan bodies call this per
   step and the option would be their only allocation. *)
let[@ltree.hot] slice t tag =
  try Hashtbl.find t.slices tag with Not_found -> empty_slice

(* An entry view of a slice for the shared array-join code.  The [rids]
   slot carries Dom ids, not row ids: snapshot joins never go back to
   the row table.  Callers must treat the entry as immutable. *)
let entry_of_slice s =
  { Label_index.starts = s.s_starts;
    ends = s.s_ends;
    rids = s.s_ids;
    len = s.s_len;
    stamp = s.s_stamp }

let[@ltree.hot] is_fresh t =
  t.snap_version = Ltree_doc.Labeled_doc.version t.src.src_doc
  && t.snap_generation = Label_index.generation t.src.src_store.Shredder.label_index

(* The refusal path allocates (payload record, recorder attrs) — cold
   by definition: it fires once per stale snapshot, not per query. *)
let[@ltree.cold] refuse t live_v live_g =
  let s =
    { stale_snap_version = t.snap_version;
      stale_snap_generation = t.snap_generation;
      stale_live_version = live_v;
      stale_live_generation = live_g }
  in
  if Ltree_obs.Recorder.is_enabled () then
    Ltree_obs.Recorder.note ~kind:"exec"
      ~attrs:
        [ ("snap_version", string_of_int s.stale_snap_version);
          ("snap_generation", string_of_int s.stale_snap_generation);
          ("live_version", string_of_int s.stale_live_version);
          ("live_generation", string_of_int s.stale_live_generation) ]
      "snapshot_stale";
  raise (Stale s)

let[@ltree.hot] ensure_fresh t =
  let live_v = Ltree_doc.Labeled_doc.version t.src.src_doc in
  let live_g = Label_index.generation t.src.src_store.Shredder.label_index in
  if t.snap_version <> live_v || t.snap_generation <> live_g then
    (refuse t live_v live_g [@ltree.cold])

let refresh t =
  if is_fresh t then t
  else of_store ~prev:t t.src.src_pager t.src.src_store t.src.src_doc
