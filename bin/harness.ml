(* The shared self-check harness behind `ltree check` and
   `ltree_stress --selfcheck`.

   One harness owns a full stack — labeled document, both XPath engines,
   the synced relational store, journal + snapshot recovery, and a
   materialized/virtual twin pair — and registers every invariant the
   stack defines into a single [Ltree_analysis.Invariant] registry, so
   validation always means "run them all", not whichever subset a
   harness remembered.

   Mutations go through a self-describing operation log (one printable
   line per op; indices are reduced modulo the current population, so
   any subsequence of a log stays applicable).  A failing run therefore
   replays from (params, seed, log), which is what lets
   [minimized_counterexample] delta-debug the log down and dump a
   reproducible [Invariant.Counterexample]. *)

open Ltree_core
open Ltree_xml
open Ltree_doc
open Ltree_relstore
module Invariant = Ltree_analysis.Invariant
module Counters = Ltree_metrics.Counters
module Prng = Ltree_workload.Prng
module Fault = Ltree_recovery.Fault
module Durable_doc = Ltree_recovery.Durable_doc
module Crash_matrix = Ltree_recovery.Crash_matrix
module Span = Ltree_obs.Span
module Accountant = Ltree_obs.Accountant
module Pool = Ltree_exec.Pool
module Read_snapshot = Ltree_exec.Read_snapshot
module Par_query = Ltree_exec.Par_query
module Sharded_doc = Ltree_shard.Sharded_doc

type t = {
  params : Params.t;
  seed : int;
  doc : Dom.document;
  root : Dom.node;
  ldoc : Labeled_doc.t;
  engine : Ltree_xpath.Label_eval.t;
  pager : Pager.t;
  store : Shredder.label_store;
  sync : Label_sync.t;
  journal : Journal.t;
  mutable snapshot : string;
  sim : Fault.sim;  (* the durable twin's simulated disk *)
  durable : Durable_doc.t;  (* crash-safe replica fed the same entries *)
  sharded : Sharded_doc.t;
      (* K-shard twin fed the same entries; shard.plans-agree compares
         its fan-out plans against its own unsharded reference store *)
  mt : Ltree.t;
  vt : Virtual_ltree.t;
  mutable mh : Ltree.leaf list;  (* newest first *)
  mutable vh : Virtual_ltree.handle list;
  acct : Accountant.t;
      (* fed the materialized twin's per-insertion relabel deltas;
         judged by the obs.amortized-bound invariant *)
  pool : Pool.t option;
      (* when present, exec.parallel-plans-agree reruns every query
         plan over a frozen snapshot on this pool *)
  registry : Invariant.registry;
  mutable log : string list;  (* newest first *)
}

let registry t = t.registry
let log t = List.rev t.log
let labels t = Ltree.labels t.mt
let accountant t = t.acct
let doc_counters t = Labeled_doc.counters t.ldoc

(* Telemetry gauge sources over the live stack, for `ltree top`: the
   sampler polls these closures on its clock, so the dashboard shows how
   label width, population and journal depth move as the workload
   runs. *)
let register_telemetry t =
  let reg name help fn = Ltree_obs.Telemetry.register ~name ~help fn in
  reg "doc_bits_per_label" "bits per label of the live document's L-Tree"
    (fun () -> float_of_int (Ltree.bits_per_label (Labeled_doc.tree t.ldoc)));
  reg "doc_live_tags" "live begin/end tags in the document's L-Tree"
    (fun () -> float_of_int (Ltree.live_length (Labeled_doc.tree t.ldoc)));
  reg "twin_leaves" "leaves in the materialized twin tree"
    (fun () -> float_of_int (Ltree.length t.mt));
  reg "journal_entries" "entries in the in-memory recovery journal"
    (fun () -> float_of_int (Journal.length t.journal));
  reg "durable_last_seq" "journal sequence applied by the durable twin"
    (fun () -> float_of_int (Durable_doc.last_seq t.durable))

let queries =
  [ "site//item/name"; "//person[address/city]"; "//patch";
    "//open_auction[bidder]/itemref"; "//item/following-sibling::item" ]

(* {1 Invariants} *)

let register_invariants t =
  let reg = t.registry in
  Invariant.register reg ~name:"ltree.structure" ~depth:Invariant.Deep
    (fun () -> Ltree.check t.mt);
  (* Paper Prop. 1, checked directly on the exported labels. *)
  Invariant.register reg ~name:"ltree.monotone-labels"
    ~depth:Invariant.Cheap (fun () ->
      let labels = Ltree.labels t.mt in
      Array.iteri
        (fun i l ->
          if i > 0 && l <= labels.(i - 1) then
            Invariant.fail ~name:"ltree.monotone-labels"
              "labels.(%d)=%d is not above labels.(%d)=%d" i l (i - 1)
              labels.(i - 1))
        labels);
  Invariant.register reg ~name:"virtual.structure" ~depth:Invariant.Deep
    (fun () -> Virtual_ltree.check t.vt);
  (* §4.1: the virtual tree must stay label-identical to the
     materialized one under the same operations. *)
  Invariant.register reg ~name:"twin.parity" ~depth:Invariant.Cheap
    (fun () ->
      let a = Ltree.labels t.mt and b = Virtual_ltree.labels t.vt in
      if Array.length a <> Array.length b then
        Invariant.fail ~name:"twin.parity"
          "materialized has %d leaves, virtual has %d" (Array.length a)
          (Array.length b);
      Array.iteri
        (fun i l ->
          if l <> b.(i) then
            Invariant.fail ~name:"twin.parity"
              "labels diverge at pos %d: materialized=%d virtual=%d" i l
              b.(i))
        a);
  Invariant.register reg ~name:"doc.consistency" ~depth:Invariant.Deep
    (fun () -> Labeled_doc.check t.ldoc);
  Invariant.register reg ~name:"doc.tree" ~depth:Invariant.Deep (fun () ->
      Ltree.check (Labeled_doc.tree t.ldoc));
  Invariant.register reg ~name:"xpath.parity" ~depth:Invariant.Deep
    (fun () ->
      Ltree_xpath.Label_eval.refresh t.engine;
      List.iter
        (fun q ->
          let path = Ltree_xpath.Xpath_parser.parse q in
          let a = List.map Dom.id (Ltree_xpath.Dom_eval.eval t.doc path) in
          let b =
            List.map Dom.id (Ltree_xpath.Label_eval.eval t.engine path)
          in
          if not (List.equal Int.equal a b) then
            Invariant.fail ~name:"xpath.parity"
              "query %S: dom navigation found %d nodes, label joins %d \
               (or a different order)"
              q (List.length a) (List.length b))
        queries);
  Invariant.register reg ~name:"store.sync" ~depth:Invariant.Deep
    (fun () ->
      ignore (Label_sync.flush t.sync);
      Label_sync.check t.sync);
  (* The incremental per-tag index must stay equivalent to sorting the
     rows from scratch: after a flush, the indexed merge join, the INL
     probe, and the sort-on-fetch baseline agree on every tag pair, and
     every clean index entry matches its backing rows (sorted, no
     tombstones). *)
  Invariant.register reg ~name:"store.index-fresh" ~depth:Invariant.Deep
    (fun () ->
      ignore (Label_sync.flush t.sync);
      let tags =
        Hashtbl.fold
          (fun tag _ acc -> tag :: acc)
          t.store.Shredder.label_by_tag []
        |> List.sort String.compare
      in
      List.iter
        (fun anc ->
          List.iter
            (fun desc ->
              let baseline =
                Query.label_descendants_baseline t.pager t.store ~anc ~desc
              in
              let indexed =
                Query.label_descendants t.pager t.store ~anc ~desc
              in
              let inl =
                Query.label_descendants_inl t.pager t.store ~anc ~desc
              in
              if not (List.equal Int.equal baseline indexed) then
                Invariant.fail ~name:"store.index-fresh"
                  "%s//%s: indexed join found %d ids, from-scratch \
                   baseline %d"
                  anc desc (List.length indexed) (List.length baseline);
              if not (List.equal Int.equal baseline inl) then
                Invariant.fail ~name:"store.index-fresh"
                  "%s//%s: INL probe found %d ids, from-scratch baseline \
                   %d"
                  anc desc (List.length inl) (List.length baseline))
            tags)
        tags;
      Label_index.check t.store.Shredder.label_index ~fetch:(fun rid ->
          let row = Rel_table.get t.store.Shredder.label_table rid in
          (row.Shredder.l_start, row.Shredder.l_end, row.Shredder.l_dead)));
  (* Parallel plans over a frozen snapshot must agree with the serial
     plans on every tag pair, at whatever pool size the harness was
     given — the determinism contract of lib/exec.  Also proves the
     staleness guard: the snapshot is taken after the flush, so it must
     still be fresh when queried. *)
  (match t.pool with
  | None -> ()
  | Some pool ->
    Invariant.register reg ~name:"exec.parallel-plans-agree"
      ~depth:Invariant.Deep (fun () ->
        ignore (Label_sync.flush t.sync);
        let snap = Read_snapshot.of_store t.pager t.store t.ldoc in
        let tags =
          Hashtbl.fold
            (fun tag _ acc -> tag :: acc)
            t.store.Shredder.label_by_tag []
          |> List.sort String.compare
        in
        let check name got want =
          if not (List.equal Int.equal got want) then
            Invariant.fail ~name:"exec.parallel-plans-agree"
              "%s: parallel plan found %d ids, serial %d (or a different \
               order)"
              name (List.length got) (List.length want)
        in
        List.iter
          (fun anc ->
            List.iter
              (fun desc ->
                check
                  (Printf.sprintf "%s//%s" anc desc)
                  (Par_query.descendants pool snap ~anc ~desc)
                  (Query.label_descendants t.pager t.store ~anc ~desc);
                check
                  (Printf.sprintf "%s/%s" anc desc)
                  (Par_query.children pool snap ~parent:anc ~child:desc)
                  (Query.label_children t.pager t.store ~parent:anc
                     ~child:desc);
                check
                  (Printf.sprintf "inl:%s//%s" anc desc)
                  (Par_query.descendants_inl pool snap ~anc ~desc)
                  (Query.label_descendants_inl t.pager t.store ~anc ~desc))
              tags)
          tags;
        (match tags with
        | a :: b :: c :: _ ->
          check
            (Printf.sprintf "%s//%s//%s" a b c)
            (Par_query.path pool snap [ a; b; c ])
            (Query.label_path t.pager t.store [ a; b; c ])
        | _ -> ());
        let batch =
          Array.of_list
            (List.concat_map (fun a -> List.map (fun d -> (a, d)) tags) tags)
        in
        let got = Par_query.descendants_batch pool snap batch in
        Array.iteri
          (fun i (anc, desc) ->
            check
              (Printf.sprintf "batch:%s//%s" anc desc)
              got.(i)
              (Query.label_descendants t.pager t.store ~anc ~desc))
          batch));
  (* Sharded fan-out plans must stay byte-identical to the same plans
     over the router twin's single unsharded store — at the harness's
     pool size, across rebalances (the checkpoint op may split a
     shard), and under label-window restriction (windows are chosen to
     straddle shard boundaries). *)
  (match t.pool with
  | None -> ()
  | Some pool ->
    Invariant.register reg ~name:"shard.plans-agree" ~depth:Invariant.Deep
      (fun () ->
        let sd = t.sharded in
        let tags =
          Hashtbl.fold
            (fun tag _ acc -> tag :: acc)
            t.store.Shredder.label_by_tag []
          |> List.sort String.compare
        in
        let check name got want =
          if not (List.equal Int.equal got want) then
            Invariant.fail ~name:"shard.plans-agree"
              "%s: sharded plan found %d ids, unsharded %d (or a \
               different order)"
              name (List.length got) (List.length want)
        in
        let windows =
          match
            List.map snd (Labeled_doc.labeled_events (Sharded_doc.router sd))
          with
          | [] -> [ None ]
          | labels ->
            let lo = List.hd labels
            and hi = List.nth labels (List.length labels - 1)
            and mid = List.nth labels (List.length labels / 2) in
            [ None; Some (lo, mid); Some (mid + 1, hi) ]
        in
        List.iter
          (fun anc ->
            List.iter
              (fun desc ->
                check
                  (Printf.sprintf "shard:%s//%s" anc desc)
                  (Sharded_doc.descendants sd pool ~anc ~desc)
                  (Sharded_doc.unsharded_descendants sd pool ~anc ~desc);
                check
                  (Printf.sprintf "shard:%s/%s" anc desc)
                  (Sharded_doc.children sd pool ~parent:anc ~child:desc)
                  (Sharded_doc.unsharded_children sd pool ~parent:anc
                     ~child:desc);
                check
                  (Printf.sprintf "shard-inl:%s//%s" anc desc)
                  (Sharded_doc.descendants_inl sd pool ~anc ~desc)
                  (Sharded_doc.unsharded_descendants_inl sd pool ~anc
                     ~desc))
              tags)
          tags;
        (* Windowed plans on a few tag pairs: the windows straddle
           shard boundaries, so routing must both prune shards and
           keep boundary-crossing answers exact. *)
        (match tags with
        | a :: b :: _ ->
          List.iter
            (fun within ->
              let wname =
                match within with
                | None -> "full"
                | Some (lo, hi) -> Printf.sprintf "[%d,%d]" lo hi
              in
              check
                (Printf.sprintf "shard:%s//%s within %s" a b wname)
                (Sharded_doc.descendants ?within sd pool ~anc:a ~desc:b)
                (Sharded_doc.unsharded_descendants ?within sd pool ~anc:a
                   ~desc:b))
            windows
        | _ -> ());
        (match tags with
        | a :: b :: c :: _ ->
          check
            (Printf.sprintf "shard:%s//%s//%s" a b c)
            (Sharded_doc.path sd pool [ a; b; c ])
            (Sharded_doc.unsharded_path sd pool [ a; b; c ])
        | _ -> ());
        let batch =
          Array.of_list
            (List.concat_map (fun a -> List.map (fun d -> (a, d)) tags) tags)
        in
        let got = Sharded_doc.descendants_batch sd pool batch in
        let want = Sharded_doc.unsharded_descendants_batch sd pool batch in
        Array.iteri
          (fun i (anc, desc) ->
            check
              (Printf.sprintf "shard-batch:%s//%s" anc desc)
              got.(i) want.(i))
          batch));
  Invariant.register reg ~name:"recovery.roundtrip" ~depth:Invariant.Deep
    (fun () ->
      let recovered = Snapshot.load t.snapshot in
      Journal.replay t.journal recovered;
      Labeled_doc.check recovered;
      let labels d = List.map snd (Labeled_doc.labeled_events d) in
      if not (List.equal Int.equal (labels t.ldoc) (labels recovered)) then
        Invariant.fail ~name:"recovery.roundtrip"
          "snapshot + journal replay diverges from the live document");
  (* The durable twin's on-disk state must stay scannable/loadable, and
     its document label-identical to the live one (it is fed the same
     entries, and labels are deterministic).  These are the same
     invariants the crash matrix runs post-recovery. *)
  Crash_matrix.register_invariants reg ~io:(Fault.sim_io t.sim)
    ~dir:"store"
    ~expected_labels:(fun () ->
      Array.of_list (List.map snd (Labeled_doc.labeled_events t.ldoc)))
    t.durable;
  (* §3.2: the observed per-insertion relabel cost must stay within the
     closed-form amortized budget.  Budget_exceeded is the accountant's
     own exception — [Invariant.run_entry] only understands Violation,
     so convert inside the closure. *)
  Invariant.register reg ~name:"obs.amortized-bound" ~depth:Invariant.Cheap
    (fun () ->
      match Accountant.check t.acct with
      | () -> ()
      | exception Accountant.Budget_exceeded b ->
        Invariant.fail ~name:"obs.amortized-bound" "%s"
          (Accountant.breach_to_string b))

(* {1 Construction} *)

let create ?(params = Params.make ~f:8 ~s:2) ?pool ~seed ~make_doc () =
  let doc : Dom.document = make_doc () in
  let root =
    match doc.root with
    | Some r -> r
    | None -> failwith "harness: document has no root"
  in
  let ldoc = Labeled_doc.of_document ~params doc in
  let engine = Ltree_xpath.Label_eval.create ldoc in
  let pager = Pager.create (Counters.create ()) in
  let store = Shredder.shred_label pager ldoc in
  let sync = Label_sync.create pager store ldoc in
  let journal = Journal.create () in
  let sim = Fault.create_sim () in
  (* The durable twin labels its own replica of the same document
     ([make_doc] is deterministic), so anchors — begin-tag labels —
     mean the same thing on both sides. *)
  let durable =
    Durable_doc.initialize ~io:(Fault.sim_io sim) ~dir:"store"
      (Labeled_doc.of_document ~params (make_doc ()))
  in
  (* The sharded twin re-labels its own replica too, so the same
     begin-tag anchors address the same nodes through its router. *)
  let sharded = Sharded_doc.create ~params ~shards:3 (make_doc ()) in
  let mt, ml = Ltree.bulk_load ~params 64 in
  let vt, vl = Virtual_ltree.bulk_load ~params 64 in
  let t =
    {
      params; seed; doc; root; ldoc; engine; pager; store; sync; journal;
      sim; durable; sharded;
      snapshot = Snapshot.save ldoc;
      mt; vt;
      mh = Array.to_list ml;
      vh = Array.to_list vl;
      acct =
        Accountant.create
          ~c:(Accountant.default_c ~f:params.Params.f ~s:params.Params.s)
          ~window:32 ();
      pool;
      registry = Invariant.create ();
      log = [];
    }
  in
  register_invariants t;
  t

(* {1 Operations} *)

let pick l j = List.nth l (abs j mod List.length l)
let int_arg s = match int_of_string_opt s with Some v -> v | None -> 0

let live_elements t =
  List.filter
    (fun n -> Dom.is_element n && n != t.root)
    (Dom.descendants t.root)

let live_texts t = List.filter Dom.is_text (Dom.descendants t.root)

let exec t line =
  match String.split_on_char ' ' line with
  | [] -> ()
  | cmd :: args -> (
    match (cmd, args) with
    | "#", _ | "", _ -> ()
    | "ins", [ j ] ->
      let j = int_arg j in
      let m = pick t.mh j and v = pick t.vh j in
      let before = Counters.relabels (Ltree.counters t.mt) in
      t.mh <- Ltree.insert_after t.mt m :: t.mh;
      Accountant.note t.acct ~n:(Ltree.length t.mt)
        ~relabels:(Counters.relabels (Ltree.counters t.mt) - before);
      t.vh <- Virtual_ltree.insert_after t.vt v :: t.vh
    | "batch", [ j; k ] ->
      let j = int_arg j and k = max 1 (int_arg k) in
      let m = pick t.mh j and v = pick t.vh j in
      let before = Counters.relabels (Ltree.counters t.mt) in
      t.mh <- Array.to_list (Ltree.insert_batch_after t.mt m k) @ t.mh;
      Accountant.note_batch t.acct ~n:(Ltree.length t.mt) ~count:k
        ~relabels:(Counters.relabels (Ltree.counters t.mt) - before);
      t.vh <-
        Array.to_list (Virtual_ltree.insert_batch_after t.vt v k) @ t.vh
    | "corrupt", _ ->
      (* An unmirrored materialized insert: legal for the tree itself,
         but it desynchronizes the twins, so twin.parity must fail. *)
      if Ltree_obs.Recorder.is_enabled () then
        Ltree_obs.Recorder.note ~kind:"fault" "harness_corrupt";
      t.mh <- Ltree.insert_after t.mt (pick t.mh 0) :: t.mh
    | "storm", _ ->
      (* A synthetic relabeling storm: one full accounting window of
         insertions each claiming relabel costs far past any c*log2 n
         budget, so obs.amortized-bound must trip.  The twins are left
         untouched — like [corrupt], this op exists to prove the alarm
         fires. *)
      if Ltree_obs.Recorder.is_enabled () then
        Ltree_obs.Recorder.note ~kind:"fault" "harness_storm";
      let n = max 2 (Ltree.length t.mt) in
      for _ = 1 to Accountant.window t.acct do
        Accountant.note t.acct ~n ~relabels:100_000
      done
    | "doc-del", [ i ] -> (
      match live_elements t with
      | [] -> ()
      | es ->
        let node = pick es (int_arg i) in
        let anchor = (Labeled_doc.label t.ldoc node).Labeled_doc.start_pos in
        Journal.delete_subtree t.journal t.ldoc node;
        Durable_doc.apply t.durable (Journal.Delete { anchor });
        Sharded_doc.apply t.sharded (Journal.Delete { anchor }))
    | "doc-text", [ i ] -> (
      match live_texts t with
      | [] -> ()
      | ts ->
        let node = pick ts (int_arg i) in
        let anchor = (Labeled_doc.label t.ldoc node).Labeled_doc.start_pos in
        Journal.set_text t.journal t.ldoc node "selfcheck edit";
        Durable_doc.apply t.durable
          (Journal.Set_text { anchor; text = "selfcheck edit" });
        Sharded_doc.apply t.sharded
          (Journal.Set_text { anchor; text = "selfcheck edit" }))
    | "doc-ins", [ i; c ] -> (
      match live_elements t with
      | [] -> ()
      | es ->
        let parent = pick es (int_arg i) in
        let anchor =
          (Labeled_doc.label t.ldoc parent).Labeled_doc.start_pos
        in
        let index = abs (int_arg c) mod (Dom.child_count parent + 1) in
        let xml =
          Printf.sprintf "<patch n=\"%d\">p<deep><x/></deep></patch>"
            (int_arg c)
        in
        Journal.insert_subtree t.journal t.ldoc ~parent ~index
          (Parser.parse_fragment xml);
        Durable_doc.apply t.durable (Journal.Insert { anchor; index; xml });
        Sharded_doc.apply t.sharded (Journal.Insert { anchor; index; xml }))
    | "checkpoint", _ ->
      t.snapshot <- Snapshot.save t.ldoc;
      Journal.clear t.journal;
      Durable_doc.checkpoint t.durable;
      Sharded_doc.checkpoint t.sharded;
      (* Density may have drifted; a split here proves the plans stay
         exact across a live rebalance. *)
      ignore (Sharded_doc.maybe_rebalance t.sharded : bool)
    | _, _ -> ())

let apply t line =
  (match String.split_on_char ' ' line with
   | cmd :: _ when not (String.equal cmd "") ->
     Span.with_ ~name:("op." ^ cmd)
       ~counters:(Labeled_doc.counters t.ldoc) (fun () -> exec t line)
   | _ -> exec t line);
  t.log <- line :: t.log

let corrupt_op = "corrupt"
let checkpoint_op = "checkpoint"
let storm_op = "storm"

(* One simulation step: a twin-tree insertion plus a document edit.
   Indices are drawn large and reduced at [exec] time, so the lines stay
   meaningful on any replayed subsequence. *)
let random_ops prng =
  let twin =
    if Prng.int prng 10 = 0 then
      Printf.sprintf "batch %d %d" (Prng.int prng 1_000_000)
        (1 + Prng.int prng 8)
    else Printf.sprintf "ins %d" (Prng.int prng 1_000_000)
  in
  let doc =
    match Prng.int prng 6 with
    | 0 -> Printf.sprintf "doc-del %d" (Prng.int prng 1_000_000)
    | 1 -> Printf.sprintf "doc-text %d" (Prng.int prng 1_000_000)
    | _ ->
      Printf.sprintf "doc-ins %d %d" (Prng.int prng 1_000_000)
        (Prng.int prng 8)
  in
  [ twin; doc ]

(* {1 Counterexamples} *)

let replay ~params ~seed ~make_doc ops =
  let t = create ~params ~seed ~make_doc () in
  List.iter (apply t) ops;
  t

let fails_after ~params ~seed ~make_doc ops =
  match Invariant.run_all (registry (replay ~params ~seed ~make_doc ops)) with
  | [] -> false
  | _ :: _ -> true

(* Shrink the failing log by replaying candidate subsequences from
   scratch, then rebuild the minimized end state so the dump carries its
   leaf labels. *)
let minimized_counterexample t ~make_doc (failure : Invariant.failure) =
  let fails ops = fails_after ~params:t.params ~seed:t.seed ~make_doc ops in
  let ops = log t in
  let ops = if fails ops then Invariant.minimize ~fails ops else ops in
  let t' = replay ~params:t.params ~seed:t.seed ~make_doc ops in
  (* Re-observe the failure on the minimized replay, so the dumped
     detail describes the state the dump reproduces. *)
  let failure =
    match Invariant.run_all (registry t') with
    | f :: _ -> f
    | [] -> failure
  in
  {
    Invariant.Counterexample.f = t.params.Params.f;
    s = t.params.Params.s;
    seed = t.seed;
    failing = failure.Invariant.name;
    detail = failure.Invariant.detail;
    ops;
    labels = labels t';
  }
