(* ltree: a command-line front end to the library.

   Subcommands:
     generate   synthesize an XML document
     label      parse a document and print its L-Tree labels
     query      run an XPath over a document (dom or label engine)
     tune       recommend (f, s) for a workload (paper 3.2)
     bench      measure insertion cost for a scheme and pattern
     check      parse, label and verify every invariant *)

open Cmdliner
open Ltree_core
open Ltree_xml
module Labeled_doc = Ltree_doc.Labeled_doc
module Counters = Ltree_metrics.Counters
module Xml_gen = Ltree_workload.Xml_gen
module Driver = Ltree_workload.Driver
module Pool = Ltree_exec.Pool

(* Shared --domains K flag: pool size for the parallel read path.
   Defaults to $LTREE_DOMAINS, else 1 (serial). *)
let domains_arg =
  Arg.(value & opt int (Pool.default_size ())
       & info [ "domains" ] ~docv:"K"
           ~doc:"Fan work across $(docv) domains (1 = serial; defaults \
                 to \\$LTREE_DOMAINS).")

(* Run [f] with a pool of [k] domains, or no pool when serial. *)
let with_domains k f =
  if k <= 1 then f None
  else Pool.with_pool ~size:k (fun p -> f (Some p))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_out path content =
  match path with
  | None -> print_string content
  | Some p ->
    let oc = open_out_bin p in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc content)

let parse_doc path =
  try Parser.parse_string (read_file path) with
  | Parser.Error (msg, pos) ->
    Printf.eprintf "%s: parse error at %s: %s\n" path
      (Format.asprintf "%a" Token.pp_position pos)
      msg;
    exit 2
  | Sys_error e ->
    Printf.eprintf "%s\n" e;
    exit 2

(* Shared options *)

let f_arg =
  Arg.(value & opt int 4 & info [ "f" ] ~docv:"F" ~doc:"L-Tree parameter f.")

let s_arg =
  Arg.(value & opt int 2 & info [ "s" ] ~docv:"S" ~doc:"L-Tree parameter s.")

let params_of f s =
  try Params.make ~f ~s
  with Invalid_argument msg ->
    Printf.eprintf "invalid parameters: %s\n" msg;
    exit 2

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"XML document.")

(* generate *)

let generate_cmd =
  let nodes =
    Arg.(value & opt int 1000 & info [ "nodes"; "n" ] ~docv:"N"
           ~doc:"Approximate DOM node count.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Generator seed (deterministic).")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"PATH"
           ~doc:"Output path (stdout by default).")
  in
  let xmark_arg =
    Arg.(value & opt (some float) None & info [ "xmark" ] ~docv:"SCALE"
           ~doc:"Generate a structured XMark-style auction site at this \
                 scale instead of a random tree (1.0 is ~4-5k nodes).")
  in
  let run nodes seed out xmark =
    let doc =
      match xmark with
      | Some scale -> Xml_gen.xmark ~seed ~scale ()
      | None ->
        Xml_gen.generate ~seed
          (Xml_gen.default_profile ~target_nodes:nodes ())
    in
    write_out out (Serializer.to_string ~indent:2 doc ^ "\n")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Synthesize an XMark-like XML document.")
    Term.(const run $ nodes $ seed $ out $ xmark_arg)

(* label *)

let label_cmd =
  let elements_only =
    Arg.(value & flag & info [ "elements" ]
           ~doc:"Print element (start, end, level) rows instead of stats.")
  in
  let run file f s elements_only =
    let doc = parse_doc file in
    let params = params_of f s in
    let counters = Counters.create () in
    let ldoc = Labeled_doc.of_document ~params ~counters doc in
    if elements_only then
      Dom.iter_preorder (Option.get doc.root) (fun n ->
          if Dom.is_element n then begin
            let l = Labeled_doc.label ldoc n in
            Printf.printf "%-20s %8d %8d %4d\n" (Dom.name n)
              l.Labeled_doc.start_pos l.Labeled_doc.end_pos
              l.Labeled_doc.level
          end)
    else begin
      let tree = Labeled_doc.tree ldoc in
      Printf.printf "tags:            %d\n" (Ltree.length tree);
      Printf.printf "tree height:     %d\n" (Ltree.height tree);
      Printf.printf "max label:       %d\n" (Ltree.max_label tree);
      Printf.printf "bits per label:  %d\n" (Ltree.bits_per_label tree);
      Printf.printf "internal nodes:  %d\n" (Ltree.internal_node_count tree);
      Printf.printf "formula bits:    %.2f\n"
        (Analysis.bits ~params ~n:(Ltree.length tree))
    end
  in
  Cmd.v
    (Cmd.info "label" ~doc:"Label a document and print labels or stats.")
    Term.(const run $ file_arg $ f_arg $ s_arg $ elements_only)

(* query *)

let query_cmd =
  let path_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"XPATH"
           ~doc:"Query, e.g. 'book//title'.")
  in
  let engine_arg =
    Arg.(value & opt (enum [ ("label", `Label); ("dom", `Dom) ]) `Label
         & info [ "engine" ] ~docv:"ENGINE"
             ~doc:"Evaluation strategy: label joins or DOM navigation.")
  in
  let show =
    Arg.(value & flag & info [ "print" ] ~doc:"Print matching subtrees.")
  in
  (* The parallel read path covers absolute descendant-only name chains
     ([//a//b//c]): exactly the shape [Par_query.path] shards.  Anything
     else falls back to the serial engine. *)
  let parallel_path_tags (ast : Ltree_xpath.Ast.t) =
    if not ast.Ltree_xpath.Ast.absolute then None
    else
      let rec go acc = function
        | [] -> ( match acc with [] -> None | _ :: _ -> Some (List.rev acc))
        | { Ltree_xpath.Ast.axis = Ltree_xpath.Ast.Descendant;
            test = Ltree_xpath.Ast.Name tag;
            preds = [] }
          :: rest ->
          go (tag :: acc) rest
        | _ :: _ -> None
      in
      go [] ast.Ltree_xpath.Ast.steps
  in
  let run file path engine show f s domains =
    let doc = parse_doc file in
    let ast =
      try Ltree_xpath.Xpath_parser.parse path
      with Ltree_xpath.Xpath_parser.Error (msg, off) ->
        Printf.eprintf "bad XPath (offset %d): %s\n" off msg;
        exit 2
    in
    let serial () =
      match engine with
      | `Dom -> Ltree_xpath.Dom_eval.eval doc ast
      | `Label ->
        let ldoc = Labeled_doc.of_document ~params:(params_of f s) doc in
        let eng = Ltree_xpath.Label_eval.create ldoc in
        Ltree_xpath.Label_eval.eval eng ast
    in
    let results =
      match engine with
      | `Label when domains > 1 -> (
        match parallel_path_tags ast with
        | None ->
          Printf.eprintf
            "note: --domains only parallelizes absolute descendant name \
             chains (//a//b); evaluating serially\n%!";
          serial ()
        | Some tags ->
          with_domains domains @@ fun pool ->
          let pool = Option.get pool in
          let ldoc = Labeled_doc.of_document ~params:(params_of f s) doc in
          let pager = Ltree_relstore.Pager.create (Counters.create ()) in
          let store = Ltree_relstore.Shredder.shred_label pager ldoc in
          let snap = Ltree_exec.Read_snapshot.of_store pager store ldoc in
          let ids = Ltree_exec.Par_query.path pool snap tags in
          List.filter_map (Labeled_doc.node_by_id ldoc) ids)
      | _ -> serial ()
    in
    Printf.printf "%d matches\n" (List.length results);
    if show then
      List.iter
        (fun n -> print_endline (Serializer.node_to_string n))
        results
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Evaluate an XPath over a document.")
    Term.(const run $ file_arg $ path_arg $ engine_arg $ show $ f_arg $ s_arg
          $ domains_arg)

(* tune *)

let tune_cmd =
  let n_arg =
    Arg.(value & opt int 1_000_000 & info [ "n" ] ~docv:"N"
           ~doc:"Expected number of tags.")
  in
  let bits_arg =
    Arg.(value & opt (some float) None & info [ "max-bits" ] ~docv:"BITS"
           ~doc:"Optional label size budget.")
  in
  let run n bits =
    let c = Tuning.minimize_cost ~max_f:512 ~n () in
    Printf.printf "min update cost:  f=%d s=%d (cost %.1f, %.1f bits)\n"
      c.Tuning.params.Params.f c.Tuning.params.Params.s c.Tuning.cost
      c.Tuning.bits;
    match bits with
    | None -> ()
    | Some budget -> (
        match
          Tuning.minimize_cost_bounded ~max_f:512 ~n ~max_bits:budget ()
        with
        | Some c ->
          Printf.printf
            "within %.0f bits:  f=%d s=%d (cost %.1f, %.1f bits)\n" budget
            c.Tuning.params.Params.f c.Tuning.params.Params.s c.Tuning.cost
            c.Tuning.bits
        | None ->
          Printf.printf "no parameters fit %.0f bits at n=%d\n" budget n)
  in
  Cmd.v
    (Cmd.info "tune" ~doc:"Recommend (f, s) for a document size.")
    Term.(const run $ n_arg $ bits_arg)

(* bench *)

let bench_cmd =
  let n_arg =
    Arg.(value & opt int 16_384 & info [ "n" ] ~docv:"N"
           ~doc:"Initial bulk-loaded size.")
  in
  let ops_arg =
    Arg.(value & opt int 2_000 & info [ "ops" ] ~docv:"OPS"
           ~doc:"Number of insertions.")
  in
  let pattern_arg =
    let patterns =
      List.map (fun p -> (Driver.pattern_name p, p)) Driver.all_patterns
    in
    Arg.(value & opt (enum patterns) Driver.Uniform
         & info [ "pattern" ] ~docv:"PATTERN"
             ~doc:"uniform, hotspot, append or prepend.")
  in
  let scheme_arg =
    Arg.(value
         & opt (enum [ ("ltree", `Ltree); ("virtual", `Virtual);
                       ("sequential", `Seq); ("gap", `Gap);
                       ("list-label", `List) ])
             `Ltree
         & info [ "scheme" ] ~docv:"SCHEME" ~doc:"Labeling scheme.")
  in
  let run n ops pattern scheme f s =
    let params = params_of f s in
    let m : (module Ltree_labeling.Scheme.S) =
      match scheme with
      | `Ltree ->
        (module Ltree_core.Scheme_adapter.Make (struct
          let params = params
        end))
      | `Virtual ->
        (module Ltree_core.Scheme_adapter.Make_virtual (struct
          let params = params
        end))
      | `Seq -> (module Ltree_labeling.Sequential)
      | `Gap -> (module Ltree_labeling.Gap)
      | `List -> (module Ltree_labeling.List_label)
    in
    let module S = (val m) in
    let module D = Driver.Make (S) in
    let counters = Counters.create () in
    let d = D.init ~counters ~n () in
    let prng = Ltree_workload.Prng.create 7 in
    Counters.reset counters;
    let t0 = Sys.time () in
    D.run d prng pattern ~ops;
    let dt = Sys.time () -. t0 in
    Printf.printf "scheme=%s n=%d ops=%d pattern=%s\n" S.name n ops
      (Driver.pattern_name pattern);
    Printf.printf "relabels/op:  %.2f\n"
      (float_of_int (Counters.relabels counters) /. float_of_int ops);
    Printf.printf "accesses/op:  %.2f\n"
      (float_of_int (Counters.node_accesses counters) /. float_of_int ops);
    Printf.printf "bits:         %d\n" (S.bits_per_label (D.scheme d));
    Printf.printf "wall:         %.1f ms (%.2f us/op)\n" (dt *. 1e3)
      (dt *. 1e6 /. float_of_int ops)
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Measure insertion cost for a labeling scheme.")
    Term.(const run $ n_arg $ ops_arg $ pattern_arg $ scheme_arg $ f_arg
          $ s_arg)

(* shell: an interactive session over one labeled document *)

let shell_cmd =
  let run file f s =
    let doc = parse_doc file in
    let params = params_of f s in
    let counters = Counters.create () in
    let ldoc = Labeled_doc.of_document ~params ~counters doc in
    let engine = Ltree_xpath.Label_eval.create ldoc in
    let eval path = Ltree_xpath.Label_eval.eval_string engine path in
    let eval_or_err path =
      try Some (eval path)
      with Ltree_xpath.Xpath_parser.Error (msg, off) ->
        Printf.printf "bad XPath (offset %d): %s\n" off msg;
        None
    in
    let help () =
      print_string
        "commands:\n\
        \  q <xpath>              run a query (label joins)\n\
        \  show <xpath>           print matching subtrees\n\
        \  label <xpath>          print (start, end, level) of matches\n\
        \  append <xpath> <xml>   insert a fragment as last child of the \
         first match\n\
        \  delete <xpath>         delete the first match's subtree\n\
        \  stats                  tree height / labels / cost counters\n\
        \  save <path>            snapshot (document + labels)\n\
        \  write <path>           serialize the document only\n\
        \  help | quit\n"
    in
    let first_match path =
      match eval_or_err path with
      | Some (n :: _) -> Some n
      | Some [] ->
        print_endline "no matches";
        None
      | None -> None
    in
    help ();
    let continue_ = ref true in
    while !continue_ do
      print_string "ltree> ";
      match input_line stdin with
      | exception End_of_file -> continue_ := false
      | line -> (
          let line = String.trim line in
          let cmd, rest =
            match String.index_opt line ' ' with
            | None -> (line, "")
            | Some i ->
              ( String.sub line 0 i,
                String.trim
                  (String.sub line (i + 1) (String.length line - i - 1)) )
          in
          try
            match cmd with
            | "" -> ()
            | "quit" | "exit" -> continue_ := false
            | "help" -> help ()
            | "q" -> (
                match eval_or_err rest with
                | Some results ->
                  Printf.printf "%d matches\n" (List.length results)
                | None -> ())
            | "show" -> (
                match eval_or_err rest with
                | Some results ->
                  List.iter
                    (fun n ->
                      print_endline (Serializer.node_to_string ~indent:2 n))
                    results
                | None -> ())
            | "label" -> (
                match eval_or_err rest with
                | Some results ->
                  List.iter
                    (fun n ->
                      let l = Labeled_doc.label ldoc n in
                      Printf.printf "%-20s (%d, %d) level %d\n"
                        (match Dom.kind n with
                         | Dom.Element name -> name
                         | _ -> "#text")
                        l.Labeled_doc.start_pos l.Labeled_doc.end_pos
                        l.Labeled_doc.level)
                    results
                | None -> ())
            | "append" -> (
                match String.index_opt rest '<' with
                | None -> print_endline "usage: append <xpath> <xml>"
                | Some i ->
                  let path = String.trim (String.sub rest 0 i) in
                  let xml =
                    String.sub rest i (String.length rest - i)
                  in
                  (match first_match path with
                   | None -> ()
                   | Some target ->
                     let sub = Parser.parse_fragment xml in
                     Labeled_doc.insert_subtree ldoc ~parent:target
                       ~index:(Dom.child_count target) sub;
                     Ltree_xpath.Label_eval.refresh engine;
                     print_endline "inserted"))
            | "delete" -> (
                match first_match rest with
                | None -> ()
                | Some target ->
                  Labeled_doc.delete_subtree ldoc target;
                  Ltree_xpath.Label_eval.refresh engine;
                  print_endline "deleted")
            | "stats" ->
              let tree = Labeled_doc.tree ldoc in
              Printf.printf
                "slots %d (live %d), height %d, max label %d (%d bits)\n"
                (Ltree.length tree) (Ltree.live_length tree)
                (Ltree.height tree) (Ltree.max_label tree)
                (Ltree.bits_per_label tree);
              Format.printf "counters: %a@." Counters.pp counters
            | "save" ->
              Ltree_doc.Snapshot.save_file ldoc rest;
              Printf.printf "snapshot written to %s\n" rest
            | "write" ->
              let oc = open_out_bin rest in
              Fun.protect
                ~finally:(fun () -> close_out oc)
                (fun () ->
                  output_string oc
                    (Serializer.to_string ~indent:2
                       (Labeled_doc.document ldoc)));
              Printf.printf "document written to %s\n" rest
            | other -> Printf.printf "unknown command %S (try help)\n" other
          with
          | Parser.Error (msg, _) -> Printf.printf "bad XML: %s\n" msg
          | Invalid_argument msg | Failure msg -> print_endline msg)
    done
  in
  Cmd.v
    (Cmd.info "shell"
       ~doc:"Interactively query and edit a labeled document.")
    Term.(const run $ file_arg $ f_arg $ s_arg)

(* compare: run a query under both engines and report parity + timing *)

let compare_cmd =
  let path_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"XPATH"
           ~doc:"Query to race between the two engines.")
  in
  let run file path f s =
    let doc = parse_doc file in
    let ast =
      try Ltree_xpath.Xpath_parser.parse path
      with Ltree_xpath.Xpath_parser.Error (msg, off) ->
        Printf.eprintf "bad XPath (offset %d): %s\n" off msg;
        exit 2
    in
    let time fn =
      let t0 = Sys.time () in
      let r = fn () in
      (r, (Sys.time () -. t0) *. 1e3)
    in
    let dom_result, dom_ms = time (fun () -> Ltree_xpath.Dom_eval.eval doc ast) in
    let ldoc = Labeled_doc.of_document ~params:(params_of f s) doc in
    let engine = Ltree_xpath.Label_eval.create ldoc in
    let label_result, label_ms =
      time (fun () -> Ltree_xpath.Label_eval.eval engine ast)
    in
    let same =
      List.map Dom.id dom_result = List.map Dom.id label_result
    in
    Printf.printf "dom navigation:   %4d matches in %6.2f ms\n"
      (List.length dom_result) dom_ms;
    Printf.printf "label joins:      %4d matches in %6.2f ms\n"
      (List.length label_result) label_ms;
    Printf.printf "engines agree:    %b\n" same;
    if not same then exit 1
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Evaluate a query with both engines and check parity.")
    Term.(const run $ file_arg $ path_arg $ f_arg $ s_arg)

(* snapshot / restore *)

let snapshot_cmd =
  let out =
    Arg.(required & opt (some string) None & info [ "o"; "output" ]
           ~docv:"PATH" ~doc:"Snapshot output path.")
  in
  let run file f s out =
    let doc = parse_doc file in
    let ldoc = Labeled_doc.of_document ~params:(params_of f s) doc in
    Ltree_doc.Snapshot.save_file ldoc out;
    Printf.printf "%s: %d labeled tags snapshotted to %s\n" file
      (Ltree.length (Labeled_doc.tree ldoc))
      out
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:"Label a document and persist labels + document to a snapshot.")
    Term.(const run $ file_arg $ f_arg $ s_arg $ out)

let restore_cmd =
  let snap_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SNAPSHOT"
           ~doc:"Snapshot file produced by `ltree snapshot`.")
  in
  let run snap =
    match Ltree_doc.Snapshot.load_file snap with
    | ldoc ->
      Labeled_doc.check ldoc;
      let tree = Labeled_doc.tree ldoc in
      Printf.printf
        "%s: restored %d slots (%d live), height %d, max label %d — all \
         labels preserved\n"
        snap (Ltree.length tree)
        (Ltree.live_length tree)
        (Ltree.height tree) (Ltree.max_label tree)
    | exception Ltree_doc.Snapshot.Corrupt msg ->
      Printf.eprintf "%s: corrupt snapshot: %s\n" snap msg;
      exit 2
  in
  Cmd.v
    (Cmd.info "restore"
       ~doc:"Load a snapshot, rebuilding the L-Tree from its labels (4.2).")
    Term.(const run $ snap_arg)

(* check *)

let check_cmd =
  let module I = Ltree_analysis.Invariant in
  let file_opt =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"XML document to load (a generated XMark document when \
                 omitted).")
  in
  let ops_arg =
    Arg.(value & opt int 300 & info [ "ops" ] ~docv:"OPS"
           ~doc:"Random operations to replay before deep validation.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Workload seed (the run is deterministic).")
  in
  let inject_arg =
    Arg.(value & flag & info [ "inject-corruption" ]
           ~doc:"Deliberately desynchronize the twin trees mid-run: the \
                 run must fail and dump a counterexample.  A self-test \
                 of the harness.")
  in
  let storm_arg =
    Arg.(value & flag & info [ "inject-storm" ]
           ~doc:"Feed the amortized-cost accountant a synthetic \
                 relabeling storm mid-run: obs.amortized-bound must \
                 trip and the run must fail.  A self-test of the \
                 observability alarm.")
  in
  let dump_arg =
    Arg.(value & opt string "counterexample.txt" & info [ "dump" ]
           ~docv:"PATH"
           ~doc:"Where to write the minimized counterexample on failure.")
  in
  let bundle_arg =
    Arg.(value & opt (some string) None & info [ "bundle" ] ~docv:"PATH"
           ~doc:"On invariant failure, also dump the flight-recorder ring \
                 — the events leading up to the violation plus a metrics \
                 snapshot — as a JSONL diagnostic bundle to $(docv).")
  in
  let run file f s ops seed inject storm dump bundle domains =
    with_domains domains @@ fun pool ->
    let params = params_of f s in
    let make_doc =
      match file with
      | Some path -> fun () -> parse_doc path
      | None -> fun () -> Xml_gen.xmark ~seed ~scale:0.3 ()
    in
    let t = Harness.create ~params ?pool ~seed ~make_doc () in
    let prng = Ltree_workload.Prng.create seed in
    for i = 1 to ops do
      List.iter (Harness.apply t) (Harness.random_ops prng);
      if i mod (max 1 (ops / 4)) = 0 then
        Harness.apply t Harness.checkpoint_op;
      if inject && i = max 1 (ops / 2) then
        Harness.apply t Harness.corrupt_op;
      if storm && i = max 1 (ops / 2) then
        Harness.apply t Harness.storm_op
    done;
    let reg = Harness.registry t in
    match I.run_all reg with
    | [] ->
      Printf.printf
        "%s: %d ops replayed; all %d registered invariants hold\n"
        (match file with Some f -> f | None -> "generated XMark document")
        ops (I.size reg);
      List.iter (fun n -> Printf.printf "  ok %s\n" n) (I.names reg)
    | failure :: _ as failures ->
      List.iter (fun f -> Format.printf "FAIL %a@." I.pp_failure f)
        failures;
      (match bundle with
       | None -> ()
       | Some path ->
         let data =
           Ltree_obs.Recorder.dump ~reason:"invariant"
             ~attrs:
               [ ("invariant", failure.I.name);
                 ("seed", string_of_int seed);
                 ("ops", string_of_int ops) ]
             ()
         in
         write_out (Some path) data;
         (match Ltree_obs.Recorder.validate data with
          | Ok n ->
            Printf.printf "flight bundle (%d lines) written to %s\n" n path
          | Error e ->
            Printf.eprintf "flight bundle failed validation: %s\n" e));
      let c = Harness.minimized_counterexample t ~make_doc failure in
      I.Counterexample.save ~path:dump c;
      Format.printf "%a@." I.Counterexample.pp c;
      Printf.printf "minimized counterexample (%d ops) written to %s\n"
        (List.length c.I.Counterexample.ops)
        dump;
      exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Replay a workload and deep-validate every registered \
             invariant.")
    Term.(const run $ file_opt $ f_arg $ s_arg $ ops_arg $ seed_arg
          $ inject_arg $ storm_arg $ dump_arg $ bundle_arg $ domains_arg)

(* crash-matrix *)

let crash_matrix_cmd =
  let module M = Ltree_recovery.Crash_matrix in
  let module F = Ltree_recovery.Fault in
  let ops_arg =
    Arg.(value & opt int M.default_config.M.ops & info [ "ops" ]
           ~docv:"OPS" ~doc:"Length of the seeded operation script.")
  in
  let seed_arg =
    Arg.(value & opt int M.default_config.M.seed & info [ "seed" ]
           ~docv:"SEED"
           ~doc:"Seed for the script and every injection choice.")
  in
  let nodes_arg =
    Arg.(value & opt int M.default_config.M.doc_nodes & info [ "nodes" ]
           ~docv:"N" ~doc:"Target size of the base document.")
  in
  let group_arg =
    Arg.(value & opt int M.default_config.M.group_commit
         & info [ "group-commit" ] ~docv:"G"
             ~doc:"Journal records batched per fsync.")
  in
  let ckpt_arg =
    Arg.(value & opt int M.default_config.M.checkpoint_every
         & info [ "checkpoint-every" ] ~docv:"K"
             ~doc:"Operations between snapshot rotations.")
  in
  let only_arg =
    Arg.(value & opt (some string) None & info [ "only" ] ~docv:"CELL"
           ~doc:"Rerun a single cell named as in the failure output \
                 (store cells: $(b,P37/torn); replica cells: \
                 $(b,primary:P12/flip), $(b,replica:P5/clean), \
                 $(b,channel:C9/torn)).")
  in
  let replica_arg =
    Arg.(value & flag & info [ "replica" ]
           ~doc:"Run the replica-level matrix instead: kill the primary \
                 mid-commit, the replica mid-apply, or sever the channel \
                 mid-record; recover or promote; verify the survivor \
                 against the oracle prefix.")
  in
  let inject_cell_arg =
    Arg.(value & opt (some string) None
         & info [ "inject-cell-failure" ] ~docv:"CELL"
             ~doc:"Force the named replica-matrix cell to report a \
                   synthetic verification failure — a self-test of the \
                   failure path and (with $(b,--bundle)) of the \
                   flight-recorder dump.  Requires $(b,--replica).")
  in
  let bundle_arg =
    Arg.(value & opt (some string) None & info [ "bundle" ] ~docv:"PATH"
           ~doc:"When any cell fails, dump the flight-recorder ring as a \
                 JSONL bundle to $(docv); the header names the failing \
                 cell and run parameters, so $(b,ltree bundle --replay) \
                 can re-run exactly that cell.  Requires $(b,--replica).")
  in
  let run ops seed nodes group_commit checkpoint_every only replica
      inject_cell bundle domains =
    if (Option.is_some inject_cell || Option.is_some bundle) && not replica
    then begin
      Printf.eprintf
        "--inject-cell-failure and --bundle apply to the replica matrix: \
         add --replica\n";
      exit 2
    end;
    with_domains domains @@ fun pool ->
    let last = ref 0 in
    let progress ~done_cells ~total =
      let decile = done_cells * 10 / total in
      if decile > !last then begin
        last := decile;
        Printf.printf "  ...%d%% (%d/%d cells)\n%!" (decile * 10) done_cells
          total
      end
    in
    if replica then begin
      let module R = Ltree_replication.Repl_matrix in
      let only =
        match only with
        | None -> None
        | Some s -> (
          match R.parse_cell s with
          | Some cell -> Some cell
          | None ->
            Printf.eprintf
              "cannot parse --only %S (expected e.g. primary:P12/torn, \
               replica:P5/clean or channel:C9/flip)\n"
              s;
            exit 2)
      in
      let inject =
        match inject_cell with
        | None -> None
        | Some s -> (
          match R.parse_cell s with
          | Some cell -> Some cell
          | None ->
            Printf.eprintf
              "cannot parse --inject-cell-failure %S (expected e.g. \
               primary:P12/torn)\n"
              s;
            exit 2)
      in
      let config =
        { R.seed; ops; doc_nodes = nodes; group_commit; checkpoint_every }
      in
      Printf.printf
        "replica crash matrix: %d ops, doc ~%d nodes, group commit %d, \
         checkpoint every %d, seed %d, %d domain(s)\n%!"
        ops nodes group_commit checkpoint_every seed (max 1 domains);
      let s = R.run ?pool ?only ?inject ~progress config in
      Printf.printf "%s\n" (R.describe s);
      if not (R.ok s) then begin
        List.iter
          (fun c ->
            match c.R.failures with
            | [] -> ()
            | failures ->
              Printf.printf "  cell %s:\n" (R.cell_name c);
              List.iter (fun f -> Printf.printf "    %s\n" f) failures;
              Printf.printf "    rerun: ltree crash-matrix --replica \
                             --only %s --ops %d --seed %d\n"
                (R.cell_name c) ops seed)
          s.R.cells;
        (match bundle with
         | None -> ()
         | Some path ->
           let failing =
             List.find_opt
               (fun c -> match c.R.failures with [] -> false | _ -> true)
               s.R.cells
           in
           let cell_name, failure =
             match failing with
             | Some c -> (R.cell_name c, String.concat "; " c.R.failures)
             | None -> ("?", "sweep incomplete")
           in
           let data =
             Ltree_obs.Recorder.dump ~reason:"repl-matrix-cell"
               ~attrs:
                 [ ("cell", cell_name); ("failure", failure);
                   ("seed", string_of_int seed);
                   ("ops", string_of_int ops);
                   ("nodes", string_of_int nodes);
                   ("group_commit", string_of_int group_commit);
                   ("checkpoint_every", string_of_int checkpoint_every) ]
               ()
           in
           write_out (Some path) data;
           (match Ltree_obs.Recorder.validate data with
            | Ok n ->
              Printf.printf
                "flight bundle (%d lines, cell %s) written to %s\n" n
                cell_name path
            | Error e ->
              Printf.eprintf "flight bundle failed validation: %s\n" e));
        exit 1
      end
    end
    else begin
      let only =
        match only with
        | None -> None
        | Some s -> (
          match M.parse_cell s with
          | Some cell -> Some cell
          | None ->
            Printf.eprintf
              "cannot parse --only %S (expected e.g. P37/torn)\n" s;
            exit 2)
      in
      let config =
        { M.seed; ops; doc_nodes = nodes; group_commit; checkpoint_every }
      in
      Printf.printf
        "crash matrix: %d ops, doc ~%d nodes, group commit %d, checkpoint \
         every %d, seed %d, %d domain(s)\n%!"
        ops nodes group_commit checkpoint_every seed (max 1 domains);
      let s = M.run ?pool ?only ~progress config in
      Printf.printf
        "swept %d write points x %d modes = %d cells (%d init-phase \
         points)\n"
        s.M.total_points
        (List.length F.all_modes)
        (List.length s.M.cells) s.M.init_points;
      let recovered, unrecoverable =
        List.partition
          (fun c -> match c.M.outcome with
             | M.Recovered _ -> true
             | M.Unrecoverable _ -> false)
          s.M.cells
      in
      Printf.printf "recovered: %d cells; pre-first-checkpoint losses: %d\n"
        (List.length recovered)
        (List.length unrecoverable);
      Printf.printf "damage detected during recovery:\n";
      List.iter
        (fun (kind, n) -> Printf.printf "  %-20s %d\n" kind n)
        s.M.fault_counts;
      if s.M.failed_cells = 0 then
        Printf.printf "crash matrix clean: all %d cells verified\n"
          (List.length s.M.cells)
      else begin
        Printf.printf "FAIL: %d cells failed verification\n"
          s.M.failed_cells;
        List.iter
          (fun c ->
            match c.M.failures with
            | [] -> ()
            | failures ->
              Printf.printf "  cell %s:\n" (M.cell_name c);
              List.iter (fun f -> Printf.printf "    %s\n" f) failures;
              Printf.printf
                "    rerun: ltree crash-matrix --only %s --ops %d --seed \
                 %d\n"
                (M.cell_name c) ops seed)
          s.M.cells;
        exit 1
      end
    end
  in
  Cmd.v
    (Cmd.info "crash-matrix"
       ~doc:"Crash the durable store (or a primary/replica pair with \
             --replica) at every write point in every corruption mode, \
             recover or promote, and verify against a bit-exact oracle.")
    Term.(const run $ ops_arg $ seed_arg $ nodes_arg $ group_arg
          $ ckpt_arg $ only_arg $ replica_arg $ inject_cell_arg
          $ bundle_arg $ domains_arg)

(* shard-matrix *)

let shard_matrix_cmd =
  let module SM = Ltree_shard.Shard_matrix in
  let module F = Ltree_recovery.Fault in
  let ops_arg =
    Arg.(value & opt int SM.default_config.SM.ops & info [ "ops" ]
           ~docv:"OPS" ~doc:"Length of the seeded global operation script.")
  in
  let seed_arg =
    Arg.(value & opt int SM.default_config.SM.seed & info [ "seed" ]
           ~docv:"SEED"
           ~doc:"Seed for the script and every injection choice.")
  in
  let nodes_arg =
    Arg.(value & opt int SM.default_config.SM.doc_nodes & info [ "nodes" ]
           ~docv:"N" ~doc:"Target size of the base document.")
  in
  let shards_arg =
    Arg.(value & opt int SM.default_config.SM.shards & info [ "shards" ]
           ~docv:"K" ~doc:"Number of subtree shards.")
  in
  let group_arg =
    Arg.(value & opt int SM.default_config.SM.group_commit
         & info [ "group-commit" ] ~docv:"G"
             ~doc:"Journal records batched per fsync, per shard.")
  in
  let ckpt_arg =
    Arg.(value & opt int SM.default_config.SM.checkpoint_every
         & info [ "checkpoint-every" ] ~docv:"K"
             ~doc:"Global operations between all-shard snapshot rotations.")
  in
  let only_arg =
    Arg.(value & opt (some string) None & info [ "only" ] ~docv:"CELL"
           ~doc:"Rerun a single cell named as in the failure output, \
                 e.g. $(b,S1/P37/torn).")
  in
  let run ops seed nodes shards group_commit checkpoint_every only domains =
    with_domains domains @@ fun pool ->
    let only =
      match only with
      | None -> None
      | Some s -> (
        match SM.parse_cell s with
        | Some cell -> Some cell
        | None ->
          Printf.eprintf "cannot parse --only %S (expected e.g. S1/P37/torn)\n"
            s;
          exit 2)
    in
    let last = ref 0 in
    let progress ~done_cells ~total =
      let decile = done_cells * 10 / total in
      if decile > !last then begin
        last := decile;
        Printf.printf "  ...%d%% (%d/%d cells)\n%!" (decile * 10) done_cells
          total
      end
    in
    let config =
      { SM.seed; ops; doc_nodes = nodes; shards; group_commit;
        checkpoint_every }
    in
    Printf.printf
      "shard crash matrix: %d shards, %d ops, doc ~%d nodes, group commit \
       %d, checkpoint every %d, seed %d, %d domain(s)\n%!"
      shards ops nodes group_commit checkpoint_every seed (max 1 domains);
    let s = SM.run ?pool ?only ~progress config in
    Array.iteri
      (fun j total ->
        Printf.printf "  shard %d: %d write points (%d init-phase)\n" j total
          s.SM.init_points.(j))
      s.SM.total_points;
    Printf.printf "swept %d cells across %d modes\n"
      (List.length s.SM.cells)
      (List.length F.all_modes);
    let recovered, unrecoverable =
      List.partition
        (fun c -> match c.SM.outcome with
           | SM.Recovered _ -> true
           | SM.Unrecoverable _ -> false)
        s.SM.cells
    in
    Printf.printf "recovered: %d cells; pre-first-checkpoint losses: %d\n"
      (List.length recovered)
      (List.length unrecoverable);
    if s.SM.failed_cells = 0 then
      Printf.printf "shard matrix clean: all %d cells verified\n"
        (List.length s.SM.cells)
    else begin
      Printf.printf "FAIL: %d cells failed verification\n" s.SM.failed_cells;
      List.iter
        (fun c ->
          match c.SM.failures with
          | [] -> ()
          | failures ->
            Printf.printf "  cell %s:\n" (SM.cell_name c);
            List.iter (fun f -> Printf.printf "    %s\n" f) failures;
            Printf.printf
              "    rerun: ltree shard-matrix --only %s --ops %d --shards %d \
               --seed %d\n"
              (SM.cell_name c) ops shards seed)
        s.SM.cells;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "shard-matrix"
       ~doc:"Crash exactly one subtree shard's store at every one of its \
             write points in every corruption mode, recover that shard \
             alone, and verify the recovered shard, its live siblings and \
             the router against bit-exact oracles.")
    Term.(const run $ ops_arg $ seed_arg $ nodes_arg $ shards_arg
          $ group_arg $ ckpt_arg $ only_arg $ domains_arg)

(* trace / metrics: the observability front ends.  Both replay the same
   deterministic harness workload `ltree check` uses — it exercises the
   L-Tree twins, the labeled document, the synced relational store and
   the durable recovery twin, so the resulting trace spans every
   layer. *)

let run_observed_workload ~params ~seed ~ops =
  let make_doc () = Xml_gen.xmark ~seed ~scale:0.3 () in
  let t = Harness.create ~params ~seed ~make_doc () in
  let prng = Ltree_workload.Prng.create seed in
  for i = 1 to ops do
    List.iter (Harness.apply t) (Harness.random_ops prng);
    if i mod (max 1 (ops / 4)) = 0 then
      Harness.apply t Harness.checkpoint_op
  done;
  (* Deep validation flushes the store, runs every structural join and
     replays recovery — the relstore and query spans come from here. *)
  (match Ltree_analysis.Invariant.run_all (Harness.registry t) with
   | [] -> ()
   | failure :: _ ->
     Format.eprintf "invariant failed during workload: %a@."
       Ltree_analysis.Invariant.pp_failure failure;
     exit 1);
  t

let ops_workload_arg =
  Arg.(value & opt int 1000 & info [ "ops" ] ~docv:"OPS"
         ~doc:"Workload operations to replay.")

let seed_workload_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED"
         ~doc:"Workload seed (the run is deterministic).")

let trace_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ]
           ~docv:"PATH" ~doc:"Write the JSONL trace here (stdout by \
                              default).")
  in
  let flame_arg =
    Arg.(value & flag & info [ "flame" ]
           ~doc:"Print a text flamegraph (self-time by span path) \
                 instead of JSONL.")
  in
  let verify_arg =
    Arg.(value & flag & info [ "verify" ]
           ~doc:"Re-parse every emitted JSONL line and assert the span \
                 tree covers the ltree, relstore and recovery layers; \
                 exit non-zero otherwise.")
  in
  let capacity_arg =
    Arg.(value & opt int 262_144 & info [ "capacity" ] ~docv:"N"
           ~doc:"Ring-buffer capacity: only the most recent N spans are \
                 kept.")
  in
  let run f s ops seed out flame verify capacity =
    let params = params_of f s in
    Ltree_obs.Span.set_capacity capacity;
    ignore (run_observed_workload ~params ~seed ~ops);
    let records = Ltree_obs.Span.records () in
    if flame then write_out out (Ltree_obs.Trace.flamegraph records)
    else begin
      let jsonl = Ltree_obs.Trace.to_jsonl records in
      write_out out jsonl;
      if verify then begin
        (match Ltree_obs.Trace.validate_jsonl jsonl with
         | Ok 0 ->
           Printf.eprintf "trace is empty\n";
           exit 1
         | Ok n -> Printf.eprintf "%d trace lines parse as JSON\n" n
         | Error detail ->
           Printf.eprintf "invalid JSONL: %s\n" detail;
           exit 1);
        let covered prefix =
          List.exists
            (fun r ->
              String.length r.Ltree_obs.Trace.name >= String.length prefix
              && String.equal
                   (String.sub r.Ltree_obs.Trace.name 0
                      (String.length prefix))
                   prefix)
            records
        in
        List.iter
          (fun layer ->
            if not (covered (layer ^ ".")) then begin
              Printf.eprintf "no %s-layer spans in the trace\n" layer;
              exit 1
            end)
          [ "ltree"; "relstore"; "recovery" ];
        Printf.eprintf
          "span tree covers the ltree, relstore and recovery layers\n"
      end;
      let dropped = Ltree_obs.Span.dropped () in
      if dropped > 0 then
        Printf.eprintf
          "note: ring wrapped, %d oldest spans overwritten (raise \
           --capacity to keep them)\n"
          dropped
    end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Replay a workload and dump the span trace as JSONL (or a \
             text flamegraph).")
    Term.(const run $ f_arg $ s_arg $ ops_workload_arg $ seed_workload_arg
          $ out $ flame_arg $ verify_arg $ capacity_arg)

let metrics_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ]
           ~docv:"PATH" ~doc:"Write the exposition here (stdout by \
                              default).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit one JSON object (histograms, counters and the \
                 amortized-bound verdict) instead of Prometheus text.")
  in
  let run f s ops seed out json =
    let params = params_of f s in
    let t = run_observed_workload ~params ~seed ~ops in
    let acct = Harness.accountant t in
    if json then
      let extra =
        [ ( "amortized_bound",
            Printf.sprintf
              "{\"ok\":%b,\"insertions\":%d,\"c\":%.2f,\"window\":%d,\
               \"breaches\":%d}"
              (Ltree_obs.Accountant.ok acct)
              (Ltree_obs.Accountant.insertions acct)
              (Ltree_obs.Accountant.c acct)
              (Ltree_obs.Accountant.window acct)
              (List.length (Ltree_obs.Accountant.breaches acct)) ) ]
      in
      write_out out (Ltree_obs.Registry.expose_json ~extra () ^ "\n")
    else begin
      let buf = Buffer.create 4096 in
      Buffer.add_string buf (Ltree_obs.Registry.expose ());
      Ltree_obs.Registry.expose_counters buf ~prefix:"ltree_doc"
        (Harness.doc_counters t);
      Buffer.add_string buf
        (Printf.sprintf
           "# obs.amortized-bound: %s (%d insertions, c=%.2f, window=%d, \
            breaches=%d)\n"
           (if Ltree_obs.Accountant.ok acct then "ok" else "BREACHED")
           (Ltree_obs.Accountant.insertions acct)
           (Ltree_obs.Accountant.c acct)
           (Ltree_obs.Accountant.window acct)
           (List.length (Ltree_obs.Accountant.breaches acct)));
      write_out out (Buffer.contents buf)
    end
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Replay a workload and print every histogram in Prometheus \
             text exposition format (or one JSON object with --json).")
    Term.(const run $ f_arg $ s_arg $ ops_workload_arg $ seed_workload_arg
          $ out $ json_arg)

(* replicate *)

let replicate_cmd =
  let module M = Ltree_recovery.Crash_matrix in
  let module F = Ltree_recovery.Fault in
  let module D = Ltree_recovery.Durable_doc in
  let module Rp = Ltree_replication in
  let ops_arg =
    Arg.(value & opt int 200 & info [ "ops" ] ~docv:"OPS"
           ~doc:"Length of the seeded operation script.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Seed for the script and every injection choice.")
  in
  let nodes_arg =
    Arg.(value & opt int 120 & info [ "nodes" ] ~docv:"N"
           ~doc:"Target size of the base document.")
  in
  let group_arg =
    Arg.(value & opt int 4 & info [ "group-commit" ] ~docv:"G"
           ~doc:"Journal records batched per fsync, both stores.")
  in
  let ckpt_arg =
    Arg.(value & opt int 32 & info [ "checkpoint-every" ] ~docv:"K"
           ~doc:"Operations between snapshot rotations.")
  in
  let noise_arg =
    Arg.(value & opt int 0 & info [ "noise-every" ] ~docv:"N"
           ~doc:"Damage every $(docv)th chunk on both channels with a \
                 seeded drop / tear / bit-flip / split / delay \
                 (0 = clean).")
  in
  let failover_arg =
    Arg.(value & flag & info [ "failover" ]
           ~doc:"After catch-up, sever the channels and promote the \
                 replica; verify the survivor against the oracle.")
  in
  let metrics_arg =
    Arg.(value & opt ~vopt:(Some "-") (some string) None
         & info [ "metrics" ] ~docv:"PATH"
             ~doc:"Write the run's Prometheus exposition to $(docv) \
                   ($(b,-) or bare flag for stdout).")
  in
  let trace_arg =
    Arg.(value & flag & info [ "trace" ]
           ~doc:"Stamp every journal record with a content-derived trace \
                 id and print the per-record waterfall \
                 (append → ship → deliver → apply → readable, in \
                 virtual-clock ticks) plus the cross-check against the \
                 end-to-end lag histogram.")
  in
  let run ops seed nodes group_commit checkpoint_every noise_every failover
      metrics trace =
    if trace then begin
      Ltree_obs.Causal.reset ();
      Ltree_obs.Causal.set_enabled true
    end;
    let config =
      { M.seed; ops; doc_nodes = nodes; group_commit; checkpoint_every }
    in
    let script = M.generate_script config in
    let oracle = M.build_oracle config script in
    let psim = F.create_sim () and rsim = F.create_sim () in
    let plan =
      if noise_every <= 0 then Rp.Channel.ideal
      else
        { Rp.Channel.ideal with
          Rp.Channel.seed;
          noise_every;
          noise_modes = F.channel_modes }
    in
    let sc =
      { Rp.Session.default_config with
        Rp.Session.group_commit;
        replica_group_commit = group_commit;
        checkpoint_every;
        down_plan = plan;
        up_plan = plan;
        attach_pumps = 256 }
    in
    let session =
      Rp.Session.create ~config:sc ~primary_io:(F.sim_io psim)
        ~primary_dir:"p" ~replica_io:(F.sim_io rsim) ~replica_dir:"r"
        (M.base_ldoc config)
    in
    let peak_lag = ref 0 in
    List.iter
      (fun e ->
        Rp.Session.apply session e;
        match Rp.Replica.lag (Rp.Session.replica session) with
        | Some l when l > !peak_lag -> peak_lag := l
        | Some _ | None -> ())
      script;
    let caught = Rp.Session.quiesce ~max_pumps:(1024 + (16 * ops)) session in
    let sh = Rp.Shipper.stats (Rp.Session.shipper session) in
    let rs = Rp.Replica.stats (Rp.Session.replica session) in
    let down = Rp.Channel.stats (Rp.Session.down session) in
    Printf.printf
      "replicated %d ops (doc ~%d nodes, group commit %d, checkpoint \
       every %d, seed %d%s)\n"
      ops nodes group_commit checkpoint_every seed
      (if noise_every > 0 then
         Printf.sprintf ", noise every %d chunks" noise_every
       else "");
    Printf.printf
      "  caught up: %b (primary seq %d, replica %s, peak lag %d, %d \
       ticks)\n"
      caught
      (D.last_seq (Rp.Session.primary session))
      (match Rp.Replica.applied_seq (Rp.Session.replica session) with
       | Some s -> string_of_int s
       | None -> "unbootstrapped")
      !peak_lag (Rp.Session.clock session);
    Printf.printf
      "  shipper: %d frames, %d retries, %d backoff ticks, %d snapshots, \
       %d handshakes, %d acks\n"
      sh.Rp.Shipper.frames_sent sh.Rp.Shipper.retries
      sh.Rp.Shipper.backoff_ticks sh.Rp.Shipper.snapshots_sent
      sh.Rp.Shipper.handshakes_sent sh.Rp.Shipper.acks_seen;
    Printf.printf
      "  replica: %d applied, %d dup, %d bad, %d stashed, %d snapshots, \
       %d handshakes\n"
      rs.Rp.Replica.applied_frames rs.Rp.Replica.dup_frames
      rs.Rp.Replica.bad_frames rs.Rp.Replica.stashed
      rs.Rp.Replica.snapshots_installed rs.Rp.Replica.handshakes;
    Printf.printf
      "  channel down: %d sent, %d delivered, %d dropped, %d damaged, %d \
       delayed\n"
      down.Rp.Channel.sent down.Rp.Channel.delivered down.Rp.Channel.dropped
      down.Rp.Channel.damaged down.Rp.Channel.delayed;
    if not caught then begin
      (match Rp.Shipper.failed (Rp.Session.shipper session) with
       | Some e -> Format.printf "  shipper parked: %a@." Rp.Shipper.pp_error e
       | None -> ());
      exit 1
    end;
    if trace then begin
      print_string (Ltree_obs.Causal.waterfall ());
      match Ltree_obs.Causal.check_waterfall () with
      | Ok summary -> Printf.printf "  %s\n" summary
      | Error e ->
        Printf.eprintf "waterfall/histogram mismatch: %s\n" e;
        exit 1
    end;
    if failover then begin
      let now = Rp.Session.clock session in
      Rp.Channel.sever (Rp.Session.down session) ~now;
      Rp.Channel.sever (Rp.Session.up session) ~now;
      match Rp.Session.failover session with
      | Error e ->
        Format.printf "failover refused: %a@." Rp.Replica.pp_error e;
        exit 1
      | Ok (report, promoted) ->
        let applied = D.last_seq promoted in
        let got =
          Array.of_list
            (List.map snd (Labeled_doc.labeled_events (D.ldoc promoted)))
        in
        let same = got = oracle.M.labels.(applied) in
        Printf.printf
          "  failover: promoted at seq %d, epoch %d, %d entries dropped: \
           %s\n"
          applied (D.epoch promoted) report.D.entries_dropped
          (if same then "survivor verified against oracle"
           else "SURVIVOR DIVERGES FROM ORACLE");
        if not same then exit 1
    end;
    match metrics with
    | None -> ()
    | Some "-" -> write_out None (Ltree_obs.Registry.expose ())
    | Some p -> write_out (Some p) (Ltree_obs.Registry.expose ())
  in
  Cmd.v
    (Cmd.info "replicate"
       ~doc:"Drive a primary/replica pair over injectable channels: \
             catch-up, lag, retries, optional failover, and the \
             replication histograms.")
    Term.(const run $ ops_arg $ seed_arg $ nodes_arg $ group_arg
          $ ckpt_arg $ noise_arg $ failover_arg $ metrics_arg $ trace_arg)

(* bundle: the flight recorder's front door.  With no mode flag it
   replays the observed workload and dumps the ring; --validate checks
   an existing bundle file; --replay re-runs the replica-matrix cell
   named in a bundle's header (the loop a failing CI matrix closes:
   the failure dumps a bundle, the bundle replays the cell). *)

let bundle_cmd =
  let module R = Ltree_replication.Repl_matrix in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ]
           ~docv:"PATH" ~doc:"Write the bundle here (stdout by default).")
  in
  let validate_arg =
    Arg.(value & opt (some file) None & info [ "validate" ] ~docv:"BUNDLE"
           ~doc:"Validate an existing bundle file and exit.")
  in
  let replay_arg =
    Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"BUNDLE"
           ~doc:"Re-run the replica-matrix cell named in the bundle \
                 header, with the bundle's own seed and run parameters \
                 (an $(b,--only) replay driven by the dump).")
  in
  let run f s ops seed out validate replay =
    match (validate, replay) with
    | Some path, _ -> (
      let data = read_file path in
      match Ltree_obs.Recorder.validate data with
      | Ok n -> Printf.printf "%s: valid bundle (%d lines)\n" path n
      | Error e ->
        Printf.eprintf "%s: invalid bundle: %s\n" path e;
        exit 1)
    | None, Some path -> (
      let data = read_file path in
      (match Ltree_obs.Recorder.validate data with
       | Ok _ -> ()
       | Error e ->
         Printf.eprintf "%s: invalid bundle: %s\n" path e;
         exit 1);
      let attr k = Ltree_obs.Recorder.attr_of_bundle data k in
      match attr "cell" with
      | None ->
        Printf.eprintf "%s: bundle header names no cell to replay\n" path;
        exit 2
      | Some cell_s -> (
        match R.parse_cell cell_s with
        | None ->
          Printf.eprintf "%s: cannot parse cell %S\n" path cell_s;
          exit 2
        | Some cell ->
          let geti k fallback =
            match attr k with
            | None -> fallback
            | Some v -> (
              match int_of_string_opt v with
              | Some n -> n
              | None -> fallback)
          in
          let d = R.default_config in
          let config =
            { R.seed = geti "seed" d.R.seed;
              ops = geti "ops" d.R.ops;
              doc_nodes = geti "nodes" d.R.doc_nodes;
              group_commit = geti "group_commit" d.R.group_commit;
              checkpoint_every =
                geti "checkpoint_every" d.R.checkpoint_every }
          in
          Printf.printf "replaying cell %s (seed %d, ops %d)\n" cell_s
            config.R.seed config.R.ops;
          let s = R.run ~only:cell config in
          Printf.printf "%s\n" (R.describe s);
          if not (R.ok s) then begin
            List.iter
              (fun c ->
                List.iter
                  (fun f -> Printf.printf "  %s: %s\n" (R.cell_name c) f)
                  c.R.failures)
              s.R.cells;
            exit 1
          end))
    | None, None ->
      let params = params_of f s in
      ignore (run_observed_workload ~params ~seed ~ops);
      let data =
        Ltree_obs.Recorder.dump ~reason:"explicit"
          ~attrs:
            [ ("seed", string_of_int seed); ("ops", string_of_int ops) ]
          ()
      in
      (match Ltree_obs.Recorder.validate data with
       | Ok n ->
         Printf.eprintf "bundle: %d lines, %d events in the ring\n" n
           (List.length (Ltree_obs.Recorder.events ()))
       | Error e ->
         Printf.eprintf "generated bundle failed validation: %s\n" e;
         exit 1);
      write_out out data
  in
  Cmd.v
    (Cmd.info "bundle"
       ~doc:"Dump, validate or replay a flight-recorder diagnostic \
             bundle.")
    Term.(const run $ f_arg $ s_arg $ ops_workload_arg $ seed_workload_arg
          $ out $ validate_arg $ replay_arg)

(* top: gauge telemetry sampled over the observed workload *)

let top_cmd =
  let width_arg =
    Arg.(value & opt int 32 & info [ "width" ] ~docv:"W"
           ~doc:"Sparkline width (most recent $(docv) samples).")
  in
  let every_arg =
    Arg.(value & opt int 10 & info [ "every" ] ~docv:"N"
           ~doc:"Sample the gauges every $(docv) operations.")
  in
  let run f s ops seed width every domains =
    with_domains domains @@ fun pool ->
    let params = params_of f s in
    let make_doc () = Xml_gen.xmark ~seed ~scale:0.3 () in
    let t = Harness.create ~params ?pool ~seed ~make_doc () in
    Ltree_obs.Telemetry.register_gc ();
    Harness.register_telemetry t;
    (match pool with Some p -> Pool.register_telemetry p | None -> ());
    let prng = Ltree_workload.Prng.create seed in
    let every = max 1 every in
    for i = 1 to ops do
      List.iter (Harness.apply t) (Harness.random_ops prng);
      if i mod (max 1 (ops / 4)) = 0 then
        Harness.apply t Harness.checkpoint_op;
      if i mod every = 0 then Ltree_obs.Telemetry.sample ~now:i ()
    done;
    Ltree_obs.Telemetry.sample ~now:(ops + 1) ();
    print_string (Ltree_obs.Telemetry.top ~width ())
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Replay a workload while sampling gauge telemetry (GC, label \
             width, journal depth, pool queue) and print the sparkline \
             dashboard.")
    Term.(const run $ f_arg $ s_arg $ ops_workload_arg $ seed_workload_arg
          $ width_arg $ every_arg $ domains_arg)

let () =
  let doc = "L-Tree: dynamic order-preserving labels for XML documents" in
  let info = Cmd.info "ltree" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ generate_cmd; label_cmd; query_cmd; compare_cmd; tune_cmd;
            bench_cmd; snapshot_cmd; restore_cmd; check_cmd;
            crash_matrix_cmd; shard_matrix_cmd; replicate_cmd; shell_cmd;
            trace_cmd;
            metrics_cmd; bundle_cmd; top_cmd ]))
