(* Soak test: one long randomized session exercising every layer at
   once, with cross-checks at every checkpoint.

     dune exec bin/ltree_stress.exe -- [ops] [seed]
     dune exec bin/ltree_stress.exe -- [ops] [seed] --selfcheck N \
       [--inject-corruption OP]

   Defaults: 20_000 operations, seed 1.  Each checkpoint verifies
   - L-Tree and virtual L-Tree invariants and label equality,
   - labeled-document consistency (tag list == live leaves),
   - query parity between the DOM and label XPath engines,
   - the synced relational store against DOM truth,
   - a snapshot+journal recovery round trip.

   With --selfcheck N the run goes through the shared [Harness] instead:
   every registered invariant is validated after every N mutations
   (cheap checks) and at five deep checkpoints; any failure is shrunk to
   a minimized counterexample and dumped.  --inject-corruption OP
   desynchronizes the twin trees at operation OP, as a self-test that
   the machinery catches and minimizes real corruption. *)

open Ltree_xml
open Ltree_core
open Ltree_doc
open Ltree_relstore
module Counters = Ltree_metrics.Counters
module Prng = Ltree_workload.Prng
module Xml_gen = Ltree_workload.Xml_gen
module Invariant = Ltree_analysis.Invariant

let selfcheck ~ops ~seed ~interval ~inject =
  let make_doc () = Xml_gen.xmark ~seed ~scale:0.3 () in
  let t = Harness.create ~seed ~make_doc () in
  let reg = Harness.registry t in
  Printf.printf
    "selfcheck: %d ops, seed %d, validating %d invariants every %d \
     mutations\n\
     %!"
    ops seed (Invariant.size reg) interval;
  let prng = Prng.create seed in
  let dump failures =
    List.iter
      (fun f -> Format.printf "FAIL %a@." Invariant.pp_failure f)
      failures;
    let c =
      Harness.minimized_counterexample t ~make_doc (List.hd failures)
    in
    let path = "counterexample-stress.txt" in
    Invariant.Counterexample.save ~path c;
    Format.printf "%a@." Invariant.Counterexample.pp c;
    Printf.printf "minimized counterexample (%d ops) written to %s\n"
      (List.length c.Invariant.Counterexample.ops)
      path;
    exit 1
  in
  let guard failures =
    match failures with [] -> () | _ :: _ -> dump failures
  in
  for i = 1 to ops do
    List.iter (Harness.apply t) (Harness.random_ops prng);
    (match inject with
     | Some at when at = i -> Harness.apply t Harness.corrupt_op
     | Some _ | None -> ());
    if i mod interval = 0 then
      guard (Invariant.run_all ~depth:Invariant.Cheap reg);
    if i mod (max 1 (ops / 5)) = 0 then begin
      guard (Invariant.run_all reg);
      Harness.apply t Harness.checkpoint_op;
      Printf.printf "  deep checkpoint at op %d: ok\n%!" i
    end
  done;
  guard (Invariant.run_all reg);
  Printf.printf "selfcheck OK: %d ops, every invariant held (%s)\n" ops
    (String.concat ", " (Invariant.names reg))

let soak ~ops ~seed =
  let prng = Prng.create seed in
  Printf.printf "soak: %d ops, seed %d\n%!" ops seed;

  (* The document under test plus every attached machinery. *)
  let doc = Xml_gen.xmark ~seed ~scale:0.5 () in
  let ldoc = Labeled_doc.of_document ~params:(Params.make ~f:8 ~s:2) doc in
  let root = Option.get doc.root in
  let engine = Ltree_xpath.Label_eval.create ldoc in
  let pager = Pager.create (Counters.create ()) in
  let store = Shredder.shred_label pager ldoc in
  let sync = Label_sync.create pager store ldoc in
  let journal = Journal.create () in
  let snapshot = ref (Snapshot.save ldoc) in

  (* A twin pair of raw trees for materialized/virtual equivalence. *)
  let mt, ml = Ltree.bulk_load ~params:Params.fig2 64 in
  let vt, vl = Virtual_ltree.bulk_load ~params:Params.fig2 64 in
  let mh = ref (Array.to_list ml) and vh = ref (Array.to_list vl) in

  let queries =
    [ "site//item/name"; "//person[address/city]"; "//patch";
      "//open_auction[bidder]/itemref"; "//item/following-sibling::item" ]
  in
  let checkpoint i =
    Ltree.check mt;
    Virtual_ltree.check vt;
    if Ltree.labels mt <> Virtual_ltree.labels vt then
      failwith "materialized/virtual divergence";
    Labeled_doc.check ldoc;
    Ltree_xpath.Label_eval.refresh engine;
    List.iter
      (fun q ->
        let path = Ltree_xpath.Xpath_parser.parse q in
        let a = List.map Dom.id (Ltree_xpath.Dom_eval.eval doc path) in
        let b =
          List.map Dom.id (Ltree_xpath.Label_eval.eval engine path)
        in
        if a <> b then failwith ("query divergence on " ^ q))
      queries;
    ignore (Label_sync.flush sync);
    Label_sync.check sync;
    (* Recovery drill: snapshot + journal tail == live state. *)
    let recovered = Snapshot.load !snapshot in
    Journal.replay journal recovered;
    Labeled_doc.check recovered;
    if
      List.map snd (Labeled_doc.labeled_events ldoc)
      <> List.map snd (Labeled_doc.labeled_events recovered)
    then failwith "recovery divergence";
    (* Fresh checkpoint: new snapshot, truncate the journal. *)
    snapshot := Snapshot.save ldoc;
    Journal.clear journal;
    Printf.printf "  checkpoint at op %d: ok (%d slots, height %d)\n%!" i
      (Ltree.length (Labeled_doc.tree ldoc))
      (Ltree.height (Labeled_doc.tree ldoc))
  in

  for i = 1 to ops do
    (* Twin trees: single or batch inserts. *)
    (match !mh with
     | [] -> ()
     | hs ->
       let j = Prng.int prng (List.length hs) in
       let m = List.nth hs j and v = List.nth !vh j in
       if Prng.int prng 10 = 0 then begin
         let k = 1 + Prng.int prng 8 in
         mh := Array.to_list (Ltree.insert_batch_after mt m k) @ hs;
         vh := Array.to_list (Virtual_ltree.insert_batch_after vt v k) @ !vh
       end
       else begin
         mh := Ltree.insert_after mt m :: hs;
         vh := Virtual_ltree.insert_after vt v :: !vh
       end);
    (* Document edits through the journal. *)
    let elements = lazy (List.filter Dom.is_element (Dom.descendants root)) in
    (match Prng.int prng 6 with
     | 0 ->
       let es = Lazy.force elements in
       let target = List.nth es (Prng.int prng (List.length es)) in
       if target != root then Journal.delete_subtree journal ldoc target
     | 1 ->
       let texts = List.filter Dom.is_text (Dom.descendants root) in
       if texts <> [] then
         Journal.set_text journal ldoc
           (List.nth texts (Prng.int prng (List.length texts)))
           (Printf.sprintf "soak %d" i)
     | _ ->
       let es = Lazy.force elements in
       let target = List.nth es (Prng.int prng (List.length es)) in
       Journal.insert_subtree journal ldoc ~parent:target
         ~index:(Prng.int prng (Dom.child_count target + 1))
         (Parser.parse_fragment
            (Printf.sprintf "<patch n=\"%d\">p<deep><x/></deep></patch>" i)));
    if i mod (max 1 (ops / 10)) = 0 then checkpoint i
  done;
  checkpoint ops;
  Printf.printf "soak OK: %d ops survived every cross-check\n" ops

let () =
  let ops = ref 20_000
  and seed = ref 1
  and interval = ref None
  and inject = ref None in
  let usage () =
    Printf.eprintf
      "usage: ltree_stress [ops] [seed] [--selfcheck N] \
       [--inject-corruption OP]\n";
    exit 2
  in
  let int_of a = match int_of_string_opt a with Some v -> v | None -> usage () in
  let rec parse pos = function
    | [] -> ()
    | "--selfcheck" :: n :: rest ->
      interval := Some (int_of n);
      parse pos rest
    | "--inject-corruption" :: n :: rest ->
      inject := Some (int_of n);
      parse pos rest
    | a :: rest ->
      (match pos with
       | 0 -> ops := int_of a
       | 1 -> seed := int_of a
       | _ -> usage ());
      parse (pos + 1) rest
  in
  parse 0 (List.tl (Array.to_list Sys.argv));
  match !interval with
  | Some interval ->
    selfcheck ~ops:!ops ~seed:!seed ~interval ~inject:!inject
  | None ->
    if Option.is_some !inject then usage ();
    soak ~ops:!ops ~seed:!seed
